package health

import (
	"encoding/json"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jarvis/internal/telemetry"
)

// Alert is one currently-firing rule.
type Alert struct {
	Rule        string   `json:"rule"`
	Severity    Severity `json:"severity"`
	Value       float64  `json:"value"`
	Threshold   float64  `json:"threshold"`
	Op          string   `json:"op"`
	FiredUnixNs int64    `json:"firedUnixNs"`
	// Count is how many evaluations have breached since firing — repeated
	// breaches dedup into this counter instead of new alerts.
	Count       int64  `json:"count"`
	Rollback    bool   `json:"rollback,omitempty"`
	Description string `json:"description,omitempty"`
}

// Transition is one firing or resolved edge, kept in the bounded history
// ring and appended to the JSONL alert log.
type Transition struct {
	UnixNs      int64    `json:"unixNs"`
	Rule        string   `json:"rule"`
	State       string   `json:"state"` // "firing" | "resolved"
	Severity    Severity `json:"severity"`
	Value       float64  `json:"value"`
	Threshold   float64  `json:"threshold"`
	Op          string   `json:"op"`
	Rollback    bool     `json:"rollback,omitempty"`
	Description string   `json:"description,omitempty"`
}

// EngineConfig configures an alert engine.
type EngineConfig struct {
	Rules []Rule
	// RingSize bounds the transition history (default 256).
	RingSize int
	// LogPath appends one JSON line per transition (empty = disabled).
	LogPath string
	// OnFiring runs synchronously for each alert on its firing edge, after
	// the engine's own lock is released — it may take daemon locks.
	OnFiring func(Alert)
	// Registry receives the engine's own metrics (default telemetry.Default).
	Registry *telemetry.Registry
	// Now substitutes the clock in tests.
	Now  func() time.Time
	Logf func(format string, args ...any)
}

// ruleState is the per-rule half of the firing→resolved state machine.
type ruleState struct {
	rule         Rule
	firing       bool
	breachStreak int
	okStreak     int
	firedAt      int64
	count        int64
	lastValue    float64
}

// Engine evaluates threshold rules against telemetry snapshots and owns
// the alert lifecycle: fire after For consecutive breaches, dedup
// repeated breaches into the existing alert, resolve after ClearFor
// consecutive clean evaluations. Evaluate is driven by the daemon's
// health ticker; readers (debug endpoints, healthz) use Active, History,
// and Stats concurrently.
type Engine struct {
	enabled atomic.Bool

	mu      sync.Mutex
	rules   []*ruleState
	prev    *telemetry.Snapshot
	ring    []Transition
	ringCap int
	log     *os.File
	cfg     EngineConfig

	evaluations int64
	fired       int64
	resolved    int64
	logFailures int64

	gFiring  *telemetry.Gauge
	gPerRule map[string]*telemetry.Gauge
	cEvals   *telemetry.Counter
	cFired   *telemetry.Counter
	cResolve *telemetry.Counter
}

// NewEngine builds an engine from validated rules. Metric handles are
// resolved once here, never during Evaluate.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	e := &Engine{
		ringCap:  cfg.RingSize,
		cfg:      cfg,
		gFiring:  cfg.Registry.Gauge("health.alerts.firing"),
		gPerRule: make(map[string]*telemetry.Gauge, len(cfg.Rules)),
		cEvals:   cfg.Registry.Counter("health.alerts.evaluations"),
		cFired:   cfg.Registry.Counter("health.alerts.fired"),
		cResolve: cfg.Registry.Counter("health.alerts.resolved"),
	}
	for _, r := range cfg.Rules {
		r = r.withDefaults()
		if err := r.validate(); err != nil {
			return nil, err
		}
		e.rules = append(e.rules, &ruleState{rule: r})
		e.gPerRule[r.Name] = cfg.Registry.Gauge("health.alert.firing." + r.Name)
	}
	if cfg.LogPath != "" {
		f, err := os.OpenFile(cfg.LogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		e.log = f
	}
	e.enabled.Store(true)
	return e, nil
}

// SetEnabled turns evaluation on or off; alert state is frozen while off.
func (e *Engine) SetEnabled(on bool) { e.enabled.Store(on) }

// Enabled reports whether the engine evaluates snapshots.
func (e *Engine) Enabled() bool { return e.enabled.Load() }

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// read extracts the rule's value from the snapshot pair. ok is false when
// the metric (or, for delta rules, the previous snapshot) is unavailable —
// which the state machine treats as clean data for the breach streak.
func (rs *ruleState) read(cur, prev *telemetry.Snapshot) (v float64, ok bool) {
	r := rs.rule
	if r.Quantile > 0 {
		h, found := cur.Histograms[r.Metric]
		if !found {
			return 0, false
		}
		if !r.Delta {
			ns, qok := telemetry.DeltaQuantile(h, telemetry.HistogramStats{}, r.Quantile)
			return float64(ns), qok
		}
		if prev == nil {
			return 0, false
		}
		ns, qok := telemetry.DeltaQuantile(h, prev.Histograms[r.Metric], r.Quantile)
		return float64(ns), qok
	}
	value := func(s *telemetry.Snapshot) (float64, bool) {
		if c, found := s.Counters[r.Metric]; found {
			return float64(c), true
		}
		if g, found := s.Gauges[r.Metric]; found {
			return g, true
		}
		return 0, false
	}
	curV, found := value(cur)
	if !found {
		return 0, false
	}
	if !r.Delta {
		return curV, true
	}
	if prev == nil {
		return 0, false
	}
	prevV, _ := value(prev) // missing before = 0 baseline (metric just appeared)
	d := curV - prevV
	if d < 0 {
		d = 0 // counter reset
	}
	return d, true
}

// Evaluate runs every rule against the snapshot and advances the alert
// state machine. When the engine is disabled the call is one atomic load.
func (e *Engine) Evaluate(snap telemetry.Snapshot) {
	if !e.enabled.Load() {
		return
	}
	now := e.cfg.Now().UnixNano()

	e.mu.Lock()
	e.evaluations++
	e.cEvals.Inc()
	var firedNow []Alert
	firing := 0
	for _, rs := range e.rules {
		v, ok := rs.read(&snap, e.prev)
		breach := ok && rs.rule.compare(v)
		if ok {
			rs.lastValue = v
		}
		switch {
		case breach && !rs.firing:
			rs.breachStreak++
			rs.okStreak = 0
			if rs.breachStreak >= rs.rule.For {
				rs.firing = true
				rs.firedAt = now
				rs.count = 1
				e.fired++
				e.cFired.Inc()
				a := rs.alert()
				firedNow = append(firedNow, a)
				e.record(Transition{
					UnixNs: now, Rule: rs.rule.Name, State: "firing",
					Severity: rs.rule.Severity, Value: v, Threshold: rs.rule.Value,
					Op: rs.rule.Op, Rollback: rs.rule.Rollback, Description: rs.rule.Description,
				})
				e.logf("health: alert firing: %s (%s %v %s %v)", rs.rule.Name, rs.rule.Metric, v, rs.rule.Op, rs.rule.Value)
			}
		case breach && rs.firing:
			// Dedup: the alert stays firing; just account the repeat.
			rs.count++
			rs.okStreak = 0
		case !breach && rs.firing:
			if ok {
				rs.okStreak++
				if rs.okStreak >= rs.rule.ClearFor {
					rs.firing = false
					rs.breachStreak, rs.okStreak = 0, 0
					e.resolved++
					e.cResolve.Inc()
					e.record(Transition{
						UnixNs: now, Rule: rs.rule.Name, State: "resolved",
						Severity: rs.rule.Severity, Value: v, Threshold: rs.rule.Value,
						Op: rs.rule.Op, Rollback: rs.rule.Rollback, Description: rs.rule.Description,
					})
					e.logf("health: alert resolved: %s", rs.rule.Name)
				}
			}
			// Missing data neither confirms nor clears a firing alert.
		default: // !breach && !firing
			rs.breachStreak = 0
		}
		if rs.firing {
			firing++
			e.gPerRule[rs.rule.Name].Set(1)
		} else {
			e.gPerRule[rs.rule.Name].Set(0)
		}
	}
	e.gFiring.SetInt(int64(firing))
	prev := snap
	e.prev = &prev
	e.mu.Unlock()

	// Firing callbacks run outside the engine lock: the daemon's handler
	// takes the server state mutex to arm the watchdog, and holding both
	// here would order the locks against the healthz reader.
	if e.cfg.OnFiring != nil {
		for _, a := range firedNow {
			e.cfg.OnFiring(a)
		}
	}
}

func (rs *ruleState) alert() Alert {
	return Alert{
		Rule:        rs.rule.Name,
		Severity:    rs.rule.Severity,
		Value:       rs.lastValue,
		Threshold:   rs.rule.Value,
		Op:          rs.rule.Op,
		FiredUnixNs: rs.firedAt,
		Count:       rs.count,
		Rollback:    rs.rule.Rollback,
		Description: rs.rule.Description,
	}
}

// record appends a transition to the bounded ring and the JSONL log.
// Caller holds e.mu.
func (e *Engine) record(t Transition) {
	if len(e.ring) >= e.ringCap {
		copy(e.ring, e.ring[1:])
		e.ring = e.ring[:len(e.ring)-1]
	}
	e.ring = append(e.ring, t)
	if e.log != nil {
		b, err := json.Marshal(t)
		if err == nil {
			b = append(b, '\n')
			_, err = e.log.Write(b)
		}
		if err != nil {
			e.logFailures++
			e.logf("health: alert log write failed: %v", err)
		}
	}
}

// Active returns the currently firing alerts, sorted by rule name.
func (e *Engine) Active() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []Alert
	for _, rs := range e.rules {
		if rs.firing {
			out = append(out, rs.alert())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule < out[j].Rule })
	return out
}

// History returns up to n most recent transitions, newest first
// (n <= 0 returns everything retained).
func (e *Engine) History(n int) []Transition {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n <= 0 || n > len(e.ring) {
		n = len(e.ring)
	}
	out := make([]Transition, n)
	for i := 0; i < n; i++ {
		out[i] = e.ring[len(e.ring)-1-i]
	}
	return out
}

// EngineStats summarizes the engine for /debug/alerts.
type EngineStats struct {
	Rules       int   `json:"rules"`
	Enabled     bool  `json:"enabled"`
	Evaluations int64 `json:"evaluations"`
	Fired       int64 `json:"fired"`
	Resolved    int64 `json:"resolved"`
	Firing      int   `json:"firing"`
	LogFailures int64 `json:"logFailures,omitempty"`
}

// Stats returns lifecycle totals.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := EngineStats{
		Rules:       len(e.rules),
		Enabled:     e.enabled.Load(),
		Evaluations: e.evaluations,
		Fired:       e.fired,
		Resolved:    e.resolved,
		LogFailures: e.logFailures,
	}
	for _, rs := range e.rules {
		if rs.firing {
			s.Firing++
		}
	}
	return s
}

// Rules returns the engine's rule set (defaults applied).
func (e *Engine) Rules() []Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Rule, len(e.rules))
	for i, rs := range e.rules {
		out[i] = rs.rule
	}
	return out
}

// Close flushes and closes the JSONL alert log. The engine stays readable.
func (e *Engine) Close() error {
	e.enabled.Store(false)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.log == nil {
		return nil
	}
	err := e.log.Close()
	e.log = nil
	return err
}
