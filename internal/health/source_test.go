package health

import (
	"testing"
	"time"

	"jarvis/internal/telemetry"
)

// memSource is a WindowSource over an in-memory point list — the same
// edge semantics the tsdb serves (newest at-or-before cutoff, oldest
// fallback).
type memSource struct {
	snaps []telemetry.Snapshot
}

func (m *memSource) add(s telemetry.Snapshot) { m.snaps = append(m.snaps, s) }

func (m *memSource) Latest() (telemetry.Snapshot, bool) {
	if len(m.snaps) == 0 {
		return telemetry.Snapshot{}, false
	}
	return m.snaps[len(m.snaps)-1], true
}

func (m *memSource) EdgeBefore(cutoffNs int64) (telemetry.Snapshot, bool) {
	if len(m.snaps) == 0 {
		return telemetry.Snapshot{}, false
	}
	for i := len(m.snaps) - 1; i >= 0; i-- {
		if m.snaps[i].UnixNs <= cutoffNs {
			return m.snaps[i], true
		}
	}
	return m.snaps[0], true
}

func TestTrackerWithWindowSource(t *testing.T) {
	reg := telemetry.New(8)
	obj := Objective{Name: "degraded", Bad: "bad", Total: "total", Target: 0.99}
	tr, err := NewTracker(time.Minute, []Objective{obj}, reg)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 0)
	now := base
	tr.SetNow(func() time.Time { return now })

	src := &memSource{}
	tr.SetSource(src)

	bad, total := reg.Counter("bad"), reg.Counter("total")
	stamp := func(at time.Time) telemetry.Snapshot {
		s := reg.Snapshot()
		s.UnixNs = at.UnixNano()
		return s
	}

	// t+0: baseline inside the window.
	total.Add(1000)
	src.add(stamp(base))
	// t+30s: +5 bad / +1000 total.
	bad.Add(5)
	total.Add(1000)
	now = base.Add(30 * time.Second)
	src.add(stamp(now))
	tr.Observe(telemetry.Snapshot{}) // snap arg ignored with a source

	st := statusByName(t, tr.Report(), "degraded")
	if st.Bad != 5 || st.Total != 1000 {
		t.Fatalf("windowed bad/total = %d/%d, want 5/1000 (edges from the source)", st.Bad, st.Total)
	}
	if st.BurnRate < 0.49 || st.BurnRate > 0.51 {
		t.Fatalf("burn = %v, want 0.5", st.BurnRate)
	}
	if g := reg.Snapshot().Gauges["health.slo.burn.degraded"]; g < 0.49 || g > 0.51 {
		t.Fatalf("burn gauge = %v, want 0.5", g)
	}

	// Advance past the window: the old baseline falls off and the newest
	// at-or-before edge moves up.
	now = base.Add(2 * time.Minute)
	bad.Add(1)
	total.Add(100)
	src.add(stamp(now))
	tr.Observe(telemetry.Snapshot{})
	st = statusByName(t, tr.Report(), "degraded")
	// Edge before now-1m is the t+30s sample: window = +1 bad / +100 total.
	if st.Bad != 1 || st.Total != 100 {
		t.Fatalf("windowed bad/total after roll = %d/%d, want 1/100", st.Bad, st.Total)
	}

	// SpanMs reflects the source edges, not the (empty) ring.
	if r := tr.Report(); r.SpanMs != (90 * time.Second).Milliseconds() {
		t.Fatalf("SpanMs = %d, want 90000", r.SpanMs)
	}
}

func TestTrackerSourceSinglePointIsEmptyWindow(t *testing.T) {
	reg := telemetry.New(8)
	obj := Objective{Name: "b", Counter: "c", Budget: 10}
	tr, err := NewTracker(time.Minute, []Objective{obj}, reg)
	if err != nil {
		t.Fatal(err)
	}
	src := &memSource{}
	tr.SetSource(src)
	reg.Counter("c").Add(7)
	s := reg.Snapshot()
	s.UnixNs = time.Unix(1700000000, 0).UnixNano()
	src.add(s)
	// One point: both edges resolve to it, so the window is empty — a
	// freshly-started store never replays pre-history as burn.
	st := statusByName(t, tr.Report(), "b")
	if st.Bad != 0 || st.BurnRate != 0 {
		t.Fatalf("single-point window scored bad=%d burn=%v, want empty", st.Bad, st.BurnRate)
	}
}
