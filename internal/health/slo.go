package health

import (
	"fmt"
	"sync"
	"time"

	"jarvis/internal/telemetry"
)

// Objective is one service-level objective scored over the tracker's
// rolling window. Exactly one of four kinds, chosen by which fields are
// set:
//
//   - latency: Histogram + ThresholdNs — the fraction of window
//     observations at or under ThresholdNs must be ≥ Target;
//   - ratio: Bad + Total counters — the windowed Bad/Total fraction must
//     stay ≤ 1−Target;
//   - budget: Counter + Budget — at most Budget windowed increments;
//   - gauge: Gauge + Budget — the gauge's current level must stay at or
//     under Budget. Unlike the windowed kinds, this scores an
//     instantaneous level (e.g. replication lag in records), so burn is
//     simply level/Budget at the newest sample.
type Objective struct {
	Name string `json:"name"`
	// Target is the good fraction for latency and ratio kinds, e.g. 0.99.
	Target float64 `json:"target,omitempty"`

	Histogram   string `json:"histogram,omitempty"`
	ThresholdNs int64  `json:"thresholdNs,omitempty"`

	Bad   string `json:"bad,omitempty"`
	Total string `json:"total,omitempty"`

	Counter string  `json:"counter,omitempty"`
	Budget  float64 `json:"budget,omitempty"`

	// Gauge names a telemetry gauge whose current value is the objective's
	// level; a gauge missing from the snapshot reads as zero.
	Gauge string `json:"gauge,omitempty"`
}

func (o Objective) kind() string {
	switch {
	case o.Histogram != "":
		return "latency"
	case o.Gauge != "":
		return "gauge"
	case o.Counter != "":
		return "budget"
	default:
		return "ratio"
	}
}

func (o Objective) validate() error {
	switch o.kind() {
	case "latency":
		if o.ThresholdNs <= 0 || o.Target <= 0 || o.Target >= 1 {
			return fmt.Errorf("objective %q: latency kind needs thresholdNs > 0 and target in (0,1)", o.Name)
		}
	case "budget":
		if o.Budget <= 0 {
			return fmt.Errorf("objective %q: budget kind needs budget > 0", o.Name)
		}
	case "gauge":
		if o.Budget <= 0 {
			return fmt.Errorf("objective %q: gauge kind needs budget > 0", o.Name)
		}
	case "ratio":
		if o.Bad == "" || o.Total == "" || o.Target <= 0 || o.Target >= 1 {
			return fmt.Errorf("objective %q: ratio kind needs bad, total, and target in (0,1)", o.Name)
		}
	}
	if o.Name == "" {
		return fmt.Errorf("objective missing name")
	}
	return nil
}

// ObjectiveStatus is one objective scored over the current window.
type ObjectiveStatus struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Target float64 `json:"target,omitempty"`
	Budget float64 `json:"budget,omitempty"`
	Good   int64   `json:"good"`
	Bad    int64   `json:"bad"`
	Total  int64   `json:"total"`
	// BadFraction is Bad/Total over the window (0 when the window is empty).
	BadFraction float64 `json:"badFraction"`
	// BurnRate is the error-budget burn: badFraction / (1 − target) for
	// latency and ratio kinds, windowed-count / budget for budget kinds.
	// 1.0 means the window consumes its budget exactly; > 1 is out of SLO.
	BurnRate float64 `json:"burnRate"`
	// P99Ns reports the windowed p99 for latency objectives.
	P99Ns int64 `json:"p99Ns,omitempty"`
	Met   bool  `json:"met"`
}

// Report is the /debug/slo document.
type Report struct {
	WindowMs int64 `json:"windowMs"`
	// SpanMs is how much of the window the retained samples actually cover.
	SpanMs     int64             `json:"spanMs"`
	Samples    int               `json:"samples"`
	Objectives []ObjectiveStatus `json:"objectives"`
}

// sample is one retained snapshot.
type sample struct {
	at   time.Time
	snap telemetry.Snapshot
}

// WindowSource supplies window-edge snapshots from a durable store (the
// daemon's tsdb). EdgeBefore returns the newest stored snapshot at or
// before the cutoff (unix nanoseconds), falling back to the oldest
// retained one; Latest returns the newest. Both report ok=false only
// when the store is empty. A tracker given a source scores its window
// from the store — the same edges a /debug/tsdb range query resolves, so
// the two computations agree by construction — instead of its in-memory
// ring.
type WindowSource interface {
	EdgeBefore(cutoffNs int64) (telemetry.Snapshot, bool)
	Latest() (telemetry.Snapshot, bool)
}

// Tracker scores objectives over a rolling window of telemetry
// snapshots. Observe is driven by the daemon's health ticker; the window
// is realized as the delta between the newest retained snapshot and the
// oldest one still inside the window, using the histogram bucket deltas
// for latency quantiles. Burn rates are published as gauges
// (health.slo.burn.<name>) so alert rules can fire on them.
type Tracker struct {
	mu         sync.Mutex
	window     time.Duration
	objectives []Objective
	samples    []sample
	source     WindowSource
	burn       map[string]*telemetry.Gauge
	now        func() time.Time
}

// NewTracker builds a tracker. Window <= 0 defaults to 10 minutes.
func NewTracker(window time.Duration, objectives []Objective, reg *telemetry.Registry) (*Tracker, error) {
	if window <= 0 {
		window = 10 * time.Minute
	}
	if reg == nil {
		reg = telemetry.Default
	}
	t := &Tracker{
		window: window,
		burn:   make(map[string]*telemetry.Gauge, len(objectives)),
		now:    time.Now,
	}
	for _, o := range objectives {
		if err := o.validate(); err != nil {
			return nil, err
		}
		t.objectives = append(t.objectives, o)
		t.burn[o.Name] = reg.Gauge("health.slo.burn." + o.Name)
	}
	return t, nil
}

// SetNow substitutes the clock (tests).
func (t *Tracker) SetNow(now func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
}

// SetSource points the tracker at a durable window store. From then on
// the in-memory sample ring stops accumulating and every score reads its
// window edges from the source.
func (t *Tracker) SetSource(src WindowSource) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.source = src
	t.samples = nil
}

// Observe appends a snapshot, evicts samples older than the window, and
// republishes every objective's burn-rate gauge. With a WindowSource set
// the snapshot argument is ignored — the source (which the caller
// appends to on its own cadence) is the single authority on window
// edges.
func (t *Tracker) Observe(snap telemetry.Snapshot) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.source == nil {
		now := t.now()
		t.samples = append(t.samples, sample{at: now, snap: snap})
		// Keep one sample at-or-before the window edge so the delta spans the
		// full window rather than starting at the first in-window sample.
		cutoff := now.Add(-t.window)
		for len(t.samples) >= 2 && !t.samples[1].at.After(cutoff) {
			t.samples = t.samples[1:]
		}
	}
	for _, st := range t.statusesLocked() {
		t.burn[st.Name].Set(st.BurnRate)
	}
}

// Window returns the configured rolling window.
func (t *Tracker) Window() time.Duration { return t.window }

// Report scores every objective over the current window.
func (t *Tracker) Report() Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := Report{
		WindowMs:   t.window.Milliseconds(),
		Samples:    len(t.samples),
		Objectives: t.statusesLocked(),
	}
	switch {
	case t.source != nil:
		if cur, ok := t.source.Latest(); ok {
			if prev, ok := t.source.EdgeBefore(t.now().Add(-t.window).UnixNano()); ok {
				r.SpanMs = (cur.UnixNs - prev.UnixNs) / int64(time.Millisecond)
			}
		}
	case len(t.samples) >= 2:
		r.SpanMs = t.samples[len(t.samples)-1].at.Sub(t.samples[0].at).Milliseconds()
	}
	return r
}

// statusesLocked scores the objectives against the retained window.
// Caller holds t.mu.
func (t *Tracker) statusesLocked() []ObjectiveStatus {
	var cur, prev telemetry.Snapshot
	switch {
	case t.source != nil:
		// Durable store: the window is [EdgeBefore(now−window), Latest] —
		// the exact edges a /debug/tsdb query over the same interval
		// resolves, so burn rates agree between the two by construction.
		var ok bool
		if cur, ok = t.source.Latest(); ok {
			prev, _ = t.source.EdgeBefore(t.now().Add(-t.window).UnixNano())
		}
	case len(t.samples) == 0:
		// No data yet: everything scores as an empty window.
	case len(t.samples) == 1:
		// Boot window: the whole first snapshot counts.
		cur = t.samples[0].snap
	default:
		cur = t.samples[len(t.samples)-1].snap
		prev = t.samples[0].snap
	}
	out := make([]ObjectiveStatus, 0, len(t.objectives))
	for _, o := range t.objectives {
		out = append(out, scoreObjective(o, cur, prev))
	}
	return out
}

func scoreObjective(o Objective, cur, prev telemetry.Snapshot) ObjectiveStatus {
	st := ObjectiveStatus{Name: o.Name, Kind: o.kind(), Target: o.Target, Budget: o.Budget}
	counterDelta := func(name string) int64 {
		d := cur.Counters[name] - prev.Counters[name]
		if d < 0 {
			d = 0
		}
		return d
	}
	var level float64 // gauge kind only
	switch st.Kind {
	case "latency":
		ch, ph := cur.Histograms[o.Histogram], prev.Histograms[o.Histogram]
		over, total := telemetry.DeltaCountOver(ch, ph, o.ThresholdNs)
		st.Bad, st.Total, st.Good = over, total, total-over
		if p99, ok := telemetry.DeltaQuantile(ch, ph, 0.99); ok {
			st.P99Ns = p99
		}
	case "ratio":
		st.Bad = counterDelta(o.Bad)
		st.Total = counterDelta(o.Total)
		if st.Bad > st.Total { // racing snapshot straddle
			st.Bad = st.Total
		}
		st.Good = st.Total - st.Bad
	case "budget":
		st.Bad = counterDelta(o.Counter)
		st.Total = st.Bad
	case "gauge":
		// An instantaneous level, not a windowed delta: only the newest
		// sample matters, and negatives clamp to an empty budget.
		if level = cur.Gauges[o.Gauge]; level < 0 {
			level = 0
		}
		st.Bad = int64(level)
		st.Total = st.Bad
	}
	if st.Total > 0 {
		st.BadFraction = float64(st.Bad) / float64(st.Total)
	}
	switch {
	case st.Kind == "budget":
		st.BurnRate = float64(st.Bad) / o.Budget
	case st.Kind == "gauge":
		st.BurnRate = level / o.Budget
	case o.Target < 1:
		st.BurnRate = st.BadFraction / (1 - o.Target)
	}
	st.Met = st.BurnRate <= 1
	return st
}
