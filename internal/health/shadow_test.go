package health

import (
	"errors"
	"path/filepath"
	"testing"

	"jarvis/internal/replay"
)

var errTest = errors.New("synthetic capture failure")

// replaySourceForTest points at an empty checkpoint store so Shadow.Run
// takes its skip path instead of replaying.
func replaySourceForTest(t *testing.T) replay.Source {
	t.Helper()
	dir := t.TempDir()
	return replay.Source{
		WALDir:         filepath.Join(dir, "wal"),
		CheckpointPath: filepath.Join(dir, "ckpt", "jarvis.ckpt"),
	}
}
