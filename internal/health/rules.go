// Package health watches the policy, not just the process: a shadow
// evaluator replays the recent WAL window against the live Q function to
// quantify behavioral drift, an SLO tracker turns telemetry snapshots
// into rolling-window error-budget burn rates, and a rule-based alert
// engine raises and resolves alerts over any of it. The package consumes
// only telemetry.Snapshot values and the replay verifier, so it runs
// entirely off the daemon's request path.
package health

import (
	"encoding/json"
	"fmt"
	"os"
)

// Severity ranks an alert. The engine treats it as opaque except for
// display; rollback eligibility is the rule's own flag.
type Severity string

const (
	SeverityInfo     Severity = "info"
	SeverityWarn     Severity = "warn"
	SeverityCritical Severity = "critical"
)

// Rule is one threshold check evaluated against every telemetry
// snapshot. A rule reads one metric — a counter, a gauge (including the
// shadow evaluator's drift gauges), or a histogram quantile — compares
// it against Value with Op, and feeds the alert state machine:
//
//   - the rule must breach on For consecutive evaluations to fire
//     (flap damping on the way up), and
//   - must then be clean on ClearFor consecutive evaluations to resolve
//     (flap damping on the way down).
//
// With Delta set, the compared value is the change since the previous
// snapshot rather than the cumulative value — the natural reading for
// counters ("any new restore failures?"). A delta rule never breaches on
// the first snapshot, and a snapshot missing the metric entirely counts
// as clean data (the conditional telemetry.events.dropped counter only
// appears once something dropped).
type Rule struct {
	Name   string `json:"name"`
	Metric string `json:"metric"`
	// Quantile selects a histogram quantile in (0,1] — e.g. 0.99 reads the
	// p99 — and makes Metric refer to a histogram. Zero reads a counter or
	// gauge. Histogram rules compare nanoseconds.
	Quantile float64 `json:"quantile,omitempty"`
	// Delta compares the change since the previous snapshot instead of the
	// cumulative value. For histogram rules the quantile is computed over
	// just the inter-snapshot window.
	Delta    bool     `json:"delta,omitempty"`
	Op       string   `json:"op"`
	Value    float64  `json:"value"`
	For      int      `json:"for,omitempty"`      // consecutive breaches to fire (default 1)
	ClearFor int      `json:"clearFor,omitempty"` // consecutive clean evals to resolve (default 2)
	Severity Severity `json:"severity,omitempty"` // default warn
	// Rollback marks the alert as a policy-divergence signal: when it
	// fires, the daemon arms the rl.Watchdog rollback path.
	Rollback    bool   `json:"rollback,omitempty"`
	Description string `json:"description,omitempty"`
}

// withDefaults fills the zero fields.
func (r Rule) withDefaults() Rule {
	if r.For <= 0 {
		r.For = 1
	}
	if r.ClearFor <= 0 {
		r.ClearFor = 2
	}
	if r.Severity == "" {
		r.Severity = SeverityWarn
	}
	return r
}

func (r Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("rule missing name")
	}
	if r.Metric == "" {
		return fmt.Errorf("rule %q missing metric", r.Name)
	}
	switch r.Op {
	case ">", ">=", "<", "<=", "==", "!=":
	default:
		return fmt.Errorf("rule %q: unknown op %q (want > >= < <= == !=)", r.Name, r.Op)
	}
	if r.Quantile < 0 || r.Quantile > 1 {
		return fmt.Errorf("rule %q: quantile %v outside (0,1]", r.Name, r.Quantile)
	}
	return nil
}

// compare applies the rule's operator.
func (r Rule) compare(v float64) bool {
	switch r.Op {
	case ">":
		return v > r.Value
	case ">=":
		return v >= r.Value
	case "<":
		return v < r.Value
	case "<=":
		return v <= r.Value
	case "==":
		return v == r.Value
	case "!=":
		return v != r.Value
	}
	return false
}

// ParseRules decodes a rules document: either a bare JSON array of rules
// or an object with a "rules" key, so a rules file can carry a comment
// field or future settings without breaking old files.
func ParseRules(data []byte) ([]Rule, error) {
	var doc struct {
		Rules []Rule `json:"rules"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		if arrErr := json.Unmarshal(data, &doc.Rules); arrErr != nil {
			return nil, fmt.Errorf("parse alert rules: %w", err)
		}
	}
	seen := make(map[string]bool, len(doc.Rules))
	out := make([]Rule, 0, len(doc.Rules))
	for _, r := range doc.Rules {
		r = r.withDefaults()
		if err := r.validate(); err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		out = append(out, r)
	}
	return out, nil
}

// LoadRules reads and parses a rules file.
func LoadRules(path string) ([]Rule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rules, err := ParseRules(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rules, nil
}

// DefaultRules is the built-in rule set a daemon runs when no -alert-rules
// file is given. It covers the failure modes the rest of the stack can
// already detect but could previously only count:
//
//   - policy drift and safety regression from the shadow evaluator
//     (both armed for watchdog rollback),
//   - serving degradation (degraded recommendations, restore failures),
//   - replication lag on a hot standby (the burn gauge reads zero on a
//     daemon that follows no one, so the rule is inert on primaries),
//   - observability loss (telemetry event-ring drops).
func DefaultRules() []Rule {
	rules := []Rule{
		{
			Name:   "policy-drift",
			Metric: GaugeDivergenceRate,
			Op:     ">", Value: 0.5,
			For: 1, ClearFor: 1,
			Severity: SeverityCritical,
			Rollback: true,
			Description: "shadow evaluation: live policy disagrees with the checkpoint trajectory " +
				"on a majority of recommendations",
		},
		{
			Name:   "shadow-safety-regression",
			Metric: GaugeViolationDelta,
			Op:     ">", Value: 0,
			For: 1, ClearFor: 1,
			Severity:    SeverityCritical,
			Rollback:    true,
			Description: "shadow evaluation: live policy causes more safety violations than the checkpoint trajectory",
		},
		{
			Name:   "degraded-recommendations",
			Metric: "rl.recommend.degraded",
			Delta:  true,
			Op:     ">", Value: 0,
			For: 1, ClearFor: 2,
			Severity:    SeverityCritical,
			Description: "recommendations served as degraded NoOp fallbacks since the last evaluation",
		},
		{
			Name:   "watchdog-restore-failures",
			Metric: "rl.watchdog.restore.failures",
			Delta:  true,
			Op:     ">", Value: 0,
			For: 1, ClearFor: 2,
			Severity:    SeverityCritical,
			Description: "the watchdog tripped but could not restore a checkpoint generation",
		},
		{
			Name:   "replication-lag",
			Metric: "health.slo.burn.replication-lag",
			Op:     ">", Value: 1,
			For: 2, ClearFor: 2,
			Severity: SeverityWarn,
			Description: "hot standby trails the primary past its lag budget " +
				"(gauge is absent — reads 0 — on daemons not following anyone)",
		},
		{
			Name:   "telemetry-events-dropped",
			Metric: "telemetry.events.dropped",
			Delta:  true,
			Op:     ">", Value: 0,
			For: 1, ClearFor: 2,
			Severity:    SeverityInfo,
			Description: "the telemetry event ring overflowed and dropped structured events",
		},
	}
	for i := range rules {
		rules[i] = rules[i].withDefaults()
	}
	return rules
}
