package health

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"jarvis/internal/telemetry"
)

// The alert lifecycle — firing after For breaches, dedup while firing,
// resolving after ClearFor clean evaluations — is the contract the
// daemon's rollback arming and the CI smoke test depend on, so each edge
// gets its own test against a synthetic registry.

func testClock() func() time.Time {
	var mu sync.Mutex
	t := time.Unix(1700000000, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Second)
		return t
	}
}

func newTestEngine(t *testing.T, rules []Rule, logPath string) (*Engine, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.New(8)
	e, err := NewEngine(EngineConfig{
		Rules:    rules,
		LogPath:  logPath,
		Registry: reg,
		Now:      testClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, reg
}

func gaugeSnap(reg *telemetry.Registry, name string, v float64) telemetry.Snapshot {
	reg.Gauge(name).Set(v)
	return reg.Snapshot()
}

func TestAlertFiringResolvedLifecycle(t *testing.T) {
	rule := Rule{Name: "hot", Metric: "temp", Op: ">", Value: 100, For: 2, ClearFor: 2}
	e, reg := newTestEngine(t, []Rule{rule}, "")

	e.Evaluate(gaugeSnap(reg, "temp", 150))
	if len(e.Active()) != 0 {
		t.Fatal("fired after 1 breach, want For=2")
	}
	e.Evaluate(gaugeSnap(reg, "temp", 160))
	active := e.Active()
	if len(active) != 1 || active[0].Rule != "hot" {
		t.Fatalf("active after 2 breaches = %+v, want [hot]", active)
	}
	if active[0].Value != 160 || active[0].Threshold != 100 {
		t.Fatalf("alert value/threshold = %v/%v", active[0].Value, active[0].Threshold)
	}

	e.Evaluate(gaugeSnap(reg, "temp", 50))
	if len(e.Active()) != 1 {
		t.Fatal("resolved after 1 clean eval, want ClearFor=2")
	}
	e.Evaluate(gaugeSnap(reg, "temp", 50))
	if len(e.Active()) != 0 {
		t.Fatal("still firing after ClearFor clean evals")
	}

	hist := e.History(0)
	if len(hist) != 2 || hist[0].State != "resolved" || hist[1].State != "firing" {
		t.Fatalf("history = %+v, want [resolved, firing] newest-first", hist)
	}
	st := e.Stats()
	if st.Fired != 1 || st.Resolved != 1 || st.Firing != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if v := reg.Snapshot().Gauges["health.alerts.firing"]; v != 0 {
		t.Fatalf("firing gauge = %v after resolve", v)
	}
}

func TestAlertDedupWhileFiring(t *testing.T) {
	rule := Rule{Name: "hot", Metric: "temp", Op: ">", Value: 100, For: 1, ClearFor: 1}
	var firings int
	reg := telemetry.New(8)
	e, err := NewEngine(EngineConfig{
		Rules:    []Rule{rule},
		Registry: reg,
		Now:      testClock(),
		OnFiring: func(Alert) { firings++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	for i := 0; i < 5; i++ {
		e.Evaluate(gaugeSnap(reg, "temp", 200))
	}
	if firings != 1 {
		t.Fatalf("OnFiring ran %d times for a sustained breach, want 1", firings)
	}
	active := e.Active()
	if len(active) != 1 || active[0].Count != 5 {
		t.Fatalf("active = %+v, want one alert with Count=5", active)
	}
	if got := len(e.History(0)); got != 1 {
		t.Fatalf("history has %d transitions, want 1 (dedup)", got)
	}
}

func TestFlapDampingUnderOscillation(t *testing.T) {
	// A metric oscillating every evaluation never sustains For=2 breaches
	// nor ClearFor=2 clean evals, so the alert must never transition.
	rule := Rule{Name: "flappy", Metric: "temp", Op: ">", Value: 100, For: 2, ClearFor: 2}
	e, reg := newTestEngine(t, []Rule{rule}, "")
	for i := 0; i < 20; i++ {
		v := 50.0
		if i%2 == 0 {
			v = 150
		}
		e.Evaluate(gaugeSnap(reg, "temp", v))
	}
	if st := e.Stats(); st.Fired != 0 || st.Resolved != 0 {
		t.Fatalf("oscillation produced transitions: %+v", st)
	}

	// The same oscillation against For=1/ClearFor=4 fires once and stays
	// firing: damping holds the alert up through the dips.
	rule2 := Rule{Name: "sticky", Metric: "temp", Op: ">", Value: 100, For: 1, ClearFor: 4}
	e2, reg2 := newTestEngine(t, []Rule{rule2}, "")
	for i := 0; i < 20; i++ {
		v := 50.0
		if i%2 == 0 {
			v = 150
		}
		e2.Evaluate(gaugeSnap(reg2, "temp", v))
	}
	if st := e2.Stats(); st.Fired != 1 || st.Resolved != 0 || st.Firing != 1 {
		t.Fatalf("sticky rule stats = %+v, want fired=1 still firing", st)
	}
}

func TestDeltaRuleNeedsPreviousSnapshot(t *testing.T) {
	rule := Rule{Name: "new-errs", Metric: "errors", Delta: true, Op: ">", Value: 0, For: 1, ClearFor: 1}
	e, reg := newTestEngine(t, []Rule{rule}, "")
	c := reg.Counter("errors")
	c.Add(100)

	// First snapshot: cumulative 100 but no previous snapshot — no breach.
	e.Evaluate(reg.Snapshot())
	if len(e.Active()) != 0 {
		t.Fatal("delta rule fired on the first snapshot")
	}
	// No movement: delta 0 — still no breach.
	e.Evaluate(reg.Snapshot())
	if len(e.Active()) != 0 {
		t.Fatal("delta rule fired without movement")
	}
	c.Add(1)
	e.Evaluate(reg.Snapshot())
	if len(e.Active()) != 1 {
		t.Fatal("delta rule missed a fresh increment")
	}
	// Movement stops: resolves.
	e.Evaluate(reg.Snapshot())
	if len(e.Active()) != 0 {
		t.Fatal("delta rule stayed firing after movement stopped")
	}
}

func TestHistogramQuantileRule(t *testing.T) {
	rule := Rule{Name: "slow", Metric: "lat", Quantile: 0.99, Op: ">", Value: 1_000_000, For: 1, ClearFor: 1}
	e, reg := newTestEngine(t, []Rule{rule}, "")
	h := reg.Histogram("lat")
	for i := 0; i < 100; i++ {
		h.ObserveNs(1000)
	}
	e.Evaluate(reg.Snapshot())
	if len(e.Active()) != 0 {
		t.Fatal("fast histogram breached the p99 rule")
	}
	for i := 0; i < 100; i++ {
		h.ObserveNs(50_000_000)
	}
	e.Evaluate(reg.Snapshot())
	if len(e.Active()) != 1 {
		t.Fatal("slow histogram did not breach the p99 rule")
	}
}

func TestMissingMetricResetsBreachStreak(t *testing.T) {
	rule := Rule{Name: "hot", Metric: "temp", Op: ">", Value: 100, For: 2, ClearFor: 1}
	e, reg := newTestEngine(t, []Rule{rule}, "")
	e.Evaluate(gaugeSnap(reg, "temp", 150))
	// A snapshot without the metric at all must reset the streak.
	e.Evaluate(telemetry.Snapshot{})
	e.Evaluate(gaugeSnap(reg, "temp", 150))
	if len(e.Active()) != 0 {
		t.Fatal("breach streak survived a missing-metric snapshot")
	}
}

func TestAlertJSONLLog(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "alerts.jsonl")
	rule := Rule{Name: "hot", Metric: "temp", Op: ">", Value: 100, For: 1, ClearFor: 1}
	e, reg := newTestEngine(t, []Rule{rule}, logPath)

	e.Evaluate(gaugeSnap(reg, "temp", 150))
	e.Evaluate(gaugeSnap(reg, "temp", 50))
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var states []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var tr Transition
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if tr.Rule != "hot" || tr.UnixNs == 0 {
			t.Fatalf("bad transition %+v", tr)
		}
		states = append(states, tr.State)
	}
	if len(states) != 2 || states[0] != "firing" || states[1] != "resolved" {
		t.Fatalf("log states = %v, want [firing resolved]", states)
	}
}

func TestDisabledEngineIsOneAtomicLoad(t *testing.T) {
	rule := Rule{Name: "hot", Metric: "temp", Op: ">", Value: 100}
	e, reg := newTestEngine(t, []Rule{rule}, "")
	snap := gaugeSnap(reg, "temp", 500)

	e.SetEnabled(false)
	if n := testing.AllocsPerRun(100, func() { e.Evaluate(snap) }); n != 0 {
		t.Fatalf("disabled Evaluate allocates %v/op, want 0", n)
	}
	if st := e.Stats(); st.Evaluations != 0 || len(e.Active()) != 0 {
		t.Fatalf("disabled engine advanced state: %+v", st)
	}
	e.SetEnabled(true)
	e.Evaluate(snap)
	if len(e.Active()) != 1 {
		t.Fatal("re-enabled engine did not evaluate")
	}
}

func TestConcurrentSnapshotDuringEvaluation(t *testing.T) {
	// Readers (healthz, /debug/alerts) race Evaluate in the daemon; under
	// -race this test is the proof the engine's locking is sound.
	rules := []Rule{
		{Name: "a", Metric: "temp", Op: ">", Value: 100, For: 1, ClearFor: 1},
		{Name: "b", Metric: "temp", Delta: true, Op: ">", Value: 0, For: 1, ClearFor: 1},
	}
	e, reg := newTestEngine(t, rules, "")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = e.Active()
				_ = e.History(8)
				_ = e.Stats()
			}
		}()
	}
	for i := 0; i < 500; i++ {
		v := float64(i % 300)
		reg.Gauge("temp").Set(v)
		reg.Counter("hits").Inc()
		e.Evaluate(reg.Snapshot())
	}
	close(stop)
	wg.Wait()
}

func TestHistoryRingBounded(t *testing.T) {
	rule := Rule{Name: "hot", Metric: "temp", Op: ">", Value: 100, For: 1, ClearFor: 1}
	reg := telemetry.New(8)
	e, err := NewEngine(EngineConfig{Rules: []Rule{rule}, RingSize: 4, Registry: reg, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 20; i++ {
		e.Evaluate(gaugeSnap(reg, "temp", 150))
		e.Evaluate(gaugeSnap(reg, "temp", 50))
	}
	if got := len(e.History(0)); got != 4 {
		t.Fatalf("ring holds %d transitions, want 4", got)
	}
}
