package anomaly

import (
	"jarvis/internal/env"
	"jarvis/internal/trace"
)

// ScoreTraced is Score under an "anomaly.score" child span annotated with
// the resulting anomaly probability. A nil span adds one nil check, so
// untraced callers (ROC sweeps, training) keep using Score directly.
func (f *Filter) ScoreTraced(sp *trace.Span, tr env.Transition) float64 {
	child := sp.Child("anomaly.score")
	score := f.Score(tr)
	if child != nil {
		child.AnnotateFloat("score", score)
		child.AnnotateFloat("threshold", f.threshold)
		child.End()
	}
	return score
}

// ScoreBatchTraced is ScoreBatch under an "anomaly.score_batch" child span
// annotated with the row count.
func (f *Filter) ScoreBatchTraced(sp *trace.Span, dst []float64, trs []env.Transition) ([]float64, error) {
	child := sp.Child("anomaly.score_batch")
	out, err := f.ScoreBatch(dst, trs)
	if child != nil {
		child.AnnotateInt("rows", int64(len(trs)))
		child.End()
	}
	return out, err
}
