package anomaly

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/policy"
)

func testEnv(t *testing.T) *env.Environment {
	t.Helper()
	oven := device.NewBuilder("oven", device.TypeOven).
		States("off", "on").
		Actions("power_off", "power_on").
		Transition("on", "power_off", "off").
		Transition("off", "power_on", "on").
		MustBuild()
	lock := device.NewBuilder("lock", device.TypeLock).
		States("locked", "unlocked").
		Actions("lock", "unlock").
		Transition("unlocked", "lock", "locked").
		Transition("locked", "unlock", "unlocked").
		MustBuild()
	b := env.NewBuilder()
	b.AddDevice(oven, env.Placement{})
	b.AddDevice(lock, env.Placement{})
	b.AddApp("manual", 0, 1)
	b.AddUser("u", 0)
	return b.MustBuild()
}

func tr(t *testing.T, e *env.Environment, from env.State, act env.Action, at time.Time) env.Transition {
	t.Helper()
	to, err := e.Transition(from, act)
	if err != nil {
		t.Fatalf("transition: %v", err)
	}
	return env.Transition{From: from, Act: act, To: to, At: at}
}

func TestEncoderDimAndOneHot(t *testing.T) {
	e := testEnv(t)
	enc := NewEncoder(e)
	// oven: 2 states + 2 actions + 1; lock: 2 states + 2 actions + 1; time: 4
	want := (2 + 3) + (2 + 3) + 4
	if enc.Dim() != want {
		t.Fatalf("Dim = %d, want %d", enc.Dim(), want)
	}
	at := time.Date(2020, 1, 6, 6, 0, 0, 0, time.UTC)
	x := enc.Encode(tr(t, e, env.State{0, 0}, env.Action{1, device.NoAction}, at))
	if len(x) != want {
		t.Fatalf("len(x) = %d", len(x))
	}
	// oven state off -> x[0] = 1; oven action power_on -> x[2+1+1] = x[4] = 1
	if x[0] != 1 || x[1] != 0 {
		t.Errorf("oven state one-hot wrong: %v", x[:2])
	}
	if x[2] != 0 || x[4] != 1 {
		t.Errorf("oven action one-hot wrong: %v", x[2:5])
	}
	// lock: state locked -> x[5]=1; NoAction -> x[7]=1
	if x[5] != 1 || x[7] != 1 {
		t.Errorf("lock features wrong: %v", x[5:10])
	}
}

func TestEncoderTimeFeatures(t *testing.T) {
	e := testEnv(t)
	enc := NewEncoder(e)
	morning := enc.Encode(tr(t, e, env.State{0, 0}, env.NoOp(2), time.Date(2020, 1, 6, 6, 0, 0, 0, time.UTC)))
	evening := enc.Encode(tr(t, e, env.State{0, 0}, env.NoOp(2), time.Date(2020, 1, 6, 18, 0, 0, 0, time.UTC)))
	d := enc.Dim()
	if morning[d-4] == evening[d-4] && morning[d-3] == evening[d-3] {
		t.Error("hour-of-day features should differ between 6am and 6pm")
	}
}

// TestFilterLearnsTimePattern trains the filter to recognize "oven turned
// on at night" as a benign anomaly while daytime oven use is normal, which
// is exactly the shape of SIMADL-style labelled anomalies.
func TestFilterLearnsTimePattern(t *testing.T) {
	e := testEnv(t)
	rng := rand.New(rand.NewSource(42))
	f, err := NewFilter(e, Config{Hidden: 16}, rng)
	if err != nil {
		t.Fatalf("NewFilter: %v", err)
	}

	var data []Labeled
	base := time.Date(2020, 1, 6, 0, 0, 0, 0, time.UTC)
	on := env.Action{1, device.NoAction}
	for day := 0; day < 40; day++ {
		// normal: oven on around noon
		data = append(data, Labeled{
			Tr:     tr(t, e, env.State{0, 0}, on, base.AddDate(0, 0, day).Add(12*time.Hour)),
			Benign: false,
		})
		// benign anomaly: oven on around 3am
		data = append(data, Labeled{
			Tr:     tr(t, e, env.State{0, 0}, on, base.AddDate(0, 0, day).Add(3*time.Hour)),
			Benign: true,
		})
	}
	loss, err := f.Train(data, Config{Epochs: 200, BatchSize: 16, LR: 0.02}, rng)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if loss > 0.2 {
		t.Fatalf("final loss %g too high", loss)
	}

	night := tr(t, e, env.State{0, 0}, on, base.Add(3*time.Hour+5*time.Minute))
	noon := tr(t, e, env.State{0, 0}, on, base.Add(12*time.Hour+5*time.Minute))
	if !f.BenignAnomaly(night) {
		t.Errorf("night oven-on should be a benign anomaly (score %g)", f.Score(night))
	}
	if f.BenignAnomaly(noon) {
		t.Errorf("noon oven-on should be normal (score %g)", f.Score(noon))
	}
}

func TestFilterImplementsPolicyFilter(t *testing.T) {
	var _ policy.Filter = (*Filter)(nil)
}

func TestTrainErrors(t *testing.T) {
	e := testEnv(t)
	rng := rand.New(rand.NewSource(1))
	f, err := NewFilter(e, Config{}, rng)
	if err != nil {
		t.Fatalf("NewFilter: %v", err)
	}
	if _, err := f.Train(nil, Config{}, rng); err == nil {
		t.Error("empty training set should error")
	}
}

func TestNewFilterNilRng(t *testing.T) {
	e := testEnv(t)
	if _, err := NewFilter(e, Config{}, nil); err == nil {
		t.Error("nil rng should error")
	}
}

func TestThresholdAccessors(t *testing.T) {
	e := testEnv(t)
	f, err := NewFilter(e, Config{Threshold: 0.7}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("NewFilter: %v", err)
	}
	if f.Threshold() != 0.7 {
		t.Errorf("Threshold = %g", f.Threshold())
	}
	f.SetThreshold(0.25)
	if f.Threshold() != 0.25 {
		t.Errorf("SetThreshold did not take: %g", f.Threshold())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	e := testEnv(t)
	rng := rand.New(rand.NewSource(9))
	f, err := NewFilter(e, Config{Hidden: 8}, rng)
	if err != nil {
		t.Fatalf("NewFilter: %v", err)
	}
	sample := tr(t, e, env.State{0, 0}, env.Action{1, device.NoAction},
		time.Date(2020, 1, 6, 12, 0, 0, 0, time.UTC))
	want := f.Score(sample)

	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	g, err := NewFilter(e, Config{Hidden: 8}, rng)
	if err != nil {
		t.Fatalf("NewFilter: %v", err)
	}
	if err := g.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := g.Score(sample); got != want {
		t.Errorf("loaded score %g, want %g", got, want)
	}
	if err := g.Load(bytes.NewBufferString("junk")); err == nil {
		t.Error("junk model should fail to load")
	}
	// architecture mismatch: model trained for a different env shape
	var other bytes.Buffer
	smallEnv := func() *env.Environment {
		d := device.NewBuilder("d", "t").States("a", "b").Actions("go").
			Transition("a", "go", "b").MustBuild()
		eb := env.NewBuilder()
		eb.AddDevice(d, env.Placement{})
		return eb.MustBuild()
	}()
	sf, err := NewFilter(smallEnv, Config{Hidden: 8}, rng)
	if err != nil {
		t.Fatalf("NewFilter: %v", err)
	}
	if err := sf.Save(&other); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := g.Load(&other); err == nil {
		t.Error("shape mismatch should fail to load")
	}
}

func TestScoreBatchMatchesScore(t *testing.T) {
	e := testEnv(t)
	rng := rand.New(rand.NewSource(41))
	f, err := NewFilter(e, Config{Hidden: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2020, 1, 6, 9, 30, 0, 0, time.UTC)
	// More transitions than one scoring chunk to exercise the chunked path.
	trs := make([]env.Transition, scoreChunk+37)
	for i := range trs {
		from := env.State{device.StateID(rng.Intn(2)), device.StateID(rng.Intn(2))}
		act := env.NoOp(2)
		dev := rng.Intn(2)
		if valid := e.Device(dev).ValidActions(from[dev]); len(valid) > 0 {
			act[dev] = valid[rng.Intn(len(valid))]
		}
		trs[i] = tr(t, e, from, act, at.Add(time.Duration(i)*time.Minute))
	}
	got, err := f.ScoreBatch(nil, trs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(trs) {
		t.Fatalf("ScoreBatch returned %d scores for %d transitions", len(got), len(trs))
	}
	for i := range trs {
		if want := f.Score(trs[i]); got[i] != want {
			t.Fatalf("transition %d: batched score %.17g != per-transition %.17g", i, got[i], want)
		}
	}
	// Steady state: warm buffers plus a capacious dst means zero allocations.
	dst := make([]float64, 0, len(trs))
	allocs := testing.AllocsPerRun(20, func() {
		var err error
		dst, err = f.ScoreBatch(dst[:0], trs)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ScoreBatch steady state allocates %.1f objects per call, want 0", allocs)
	}
}
