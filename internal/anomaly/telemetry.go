package anomaly

import "jarvis/internal/telemetry"

// Metric handles, resolved once at init. Accepted = classified natural and
// kept in the training data; rejected = classified benign anomaly and
// filtered out (Algorithm 1's Filter_ANN branch).
var (
	mAccepted     = telemetry.Default.Counter("anomaly.filter.accepted")
	mRejected     = telemetry.Default.Counter("anomaly.filter.rejected")
	mScoreLatency = telemetry.Default.Histogram("anomaly.score.latency")
)
