// Package anomaly implements the benign-anomaly filter of the Jarvis SPL
// (Section IV-A and V-A3): a feed-forward multi-layer perceptron with a
// single hidden layer, trained by back-propagation on user-labelled benign
// anomalous activities. During the learning phase the filter removes benign
// device malfunctions and human errors from the training data so that they
// are neither learned as natural behavior nor later flagged as violations.
package anomaly

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/nn"
)

// Encoder maps environment transitions to fixed-width feature vectors:
// a one-hot encoding of every device's current state, a one-hot encoding of
// every device's action (with an extra "no action" slot), and a cyclic
// (sin/cos) encoding of the time of day and day of week.
type Encoder struct {
	env *env.Environment
	dim int
	// states/actions cache per-device state and action counts so encoding
	// never re-copies the device list.
	states, actions []int
}

// NewEncoder builds an encoder for the environment.
func NewEncoder(e *env.Environment) *Encoder {
	dim := 4 // sin/cos hour-of-day, sin/cos day-of-week
	enc := &Encoder{env: e}
	for _, d := range e.Devices() {
		dim += d.NumStates() + d.NumActions() + 1
		enc.states = append(enc.states, d.NumStates())
		enc.actions = append(enc.actions, d.NumActions())
	}
	enc.dim = dim
	return enc
}

// Dim returns the feature-vector width.
func (enc *Encoder) Dim() int { return enc.dim }

// Encode writes the transition's features into a fresh vector.
func (enc *Encoder) Encode(tr env.Transition) []float64 {
	return enc.EncodeInto(make([]float64, enc.dim), tr)
}

// EncodeInto writes the transition's features into x, which must have
// length Dim, and returns it. It allocates nothing.
func (enc *Encoder) EncodeInto(x []float64, tr env.Transition) []float64 {
	for i := range x {
		x[i] = 0
	}
	i := 0
	for di := range enc.states {
		ns, na := enc.states[di], enc.actions[di]
		if s := int(tr.From[di]); s >= 0 && s < ns {
			x[i+s] = 1
		}
		i += ns
		a := tr.Act[di]
		if a == device.NoAction {
			x[i] = 1
		} else if int(a) < na {
			x[i+1+int(a)] = 1
		}
		i += na + 1
	}
	h := timeOfDay(tr.At)
	x[i] = math.Sin(2 * math.Pi * h / 24)
	x[i+1] = math.Cos(2 * math.Pi * h / 24)
	w := float64(tr.At.Weekday())
	x[i+2] = math.Sin(2 * math.Pi * w / 7)
	x[i+3] = math.Cos(2 * math.Pi * w / 7)
	return x
}

func timeOfDay(t time.Time) float64 {
	return float64(t.Hour()) + float64(t.Minute())/60
}

// Labeled is one training example for the filter: a transition and whether
// the user labelled it a benign anomaly.
type Labeled struct {
	Tr     env.Transition
	Benign bool // true = benign anomaly (positive class)
}

// Config parameterizes the filter's MLP and training run.
type Config struct {
	// Hidden is the hidden-layer width (default 32). The paper prescribes
	// a single hidden layer.
	Hidden int
	// Threshold is the decision threshold on the benign-anomaly
	// probability (default 0.5).
	Threshold float64
	// Epochs (default 30), BatchSize (default 32) and LR (default 0.01)
	// control back-propagation training.
	Epochs, BatchSize int
	LR                float64
}

func (c Config) withDefaults() Config {
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR <= 0 {
		c.LR = 0.01
	}
	return c
}

// Filter is the trained ANN benign-anomaly classifier. It implements
// policy.Filter.
type Filter struct {
	enc       *Encoder
	net       *nn.Network
	threshold float64

	// Reused feature rows for ScoreBatch (flat backing plus row views) and
	// the single-transition encode scratch for Score.
	xback []float64
	xrows [][]float64
	xone  []float64
}

// NewFilter constructs an untrained filter for the environment.
func NewFilter(e *env.Environment, cfg Config, rng *rand.Rand) (*Filter, error) {
	cfg = cfg.withDefaults()
	enc := NewEncoder(e)
	net, err := nn.New(nn.Config{
		Inputs: enc.Dim(),
		Layers: []nn.LayerSpec{
			{Units: cfg.Hidden, Act: nn.Tanh},
			{Units: 1, Act: nn.Sigmoid},
		},
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("anomaly: %w", err)
	}
	return &Filter{enc: enc, net: net, threshold: cfg.Threshold}, nil
}

// Train fits the MLP by back-propagation on the labelled data and returns
// the final epoch's mean loss.
func (f *Filter) Train(data []Labeled, cfg Config, rng *rand.Rand) (float64, error) {
	cfg = cfg.withDefaults()
	if len(data) == 0 {
		return 0, errors.New("anomaly: no training data")
	}
	samples := make([]nn.Sample, len(data))
	for i, d := range data {
		y := 0.0
		if d.Benign {
			y = 1
		}
		samples[i] = nn.Sample{X: f.enc.Encode(d.Tr), Y: []float64{y}}
	}
	loss, err := f.net.Fit(samples, cfg.Epochs, cfg.BatchSize, nn.BCE, nn.NewAdam(cfg.LR), rng)
	if err != nil {
		return 0, fmt.Errorf("anomaly: train: %w", err)
	}
	return loss, nil
}

// Score returns the benign-anomaly probability of a transition. Like the
// network it wraps, the filter is not safe for concurrent use.
func (f *Filter) Score(tr env.Transition) float64 {
	if f.xone == nil {
		f.xone = make([]float64, f.enc.Dim())
	}
	if !mScoreLatency.Enabled() {
		return f.net.Forward(f.enc.EncodeInto(f.xone, tr))[0]
	}
	t0 := time.Now()
	s := f.net.Forward(f.enc.EncodeInto(f.xone, tr))[0]
	mScoreLatency.Observe(time.Since(t0))
	return s
}

// scoreChunk caps the rows per batched forward pass so the network's batch
// arena stays modest no matter how many transitions ScoreBatch is handed.
const scoreChunk = 256

// ensureRows sizes the reused encode rows for n transitions.
func (f *Filter) ensureRows(n int) [][]float64 {
	if n <= cap(f.xrows) {
		return f.xrows[:n]
	}
	dim := f.enc.Dim()
	f.xback = make([]float64, n*dim)
	f.xrows = make([][]float64, n)
	for i := range f.xrows {
		f.xrows[i] = f.xback[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return f.xrows
}

// ScoreBatch scores every transition with chunked batched forward passes,
// appending the benign-anomaly probabilities to dst and returning it. The
// scores are bit-identical to calling Score per transition.
func (f *Filter) ScoreBatch(dst []float64, trs []env.Transition) ([]float64, error) {
	for start := 0; start < len(trs); start += scoreChunk {
		end := start + scoreChunk
		if end > len(trs) {
			end = len(trs)
		}
		rows := f.ensureRows(end - start)
		for i, tr := range trs[start:end] {
			f.enc.EncodeInto(rows[i], tr)
		}
		out, err := f.net.ForwardBatch(rows)
		if err != nil {
			return dst, fmt.Errorf("anomaly: score batch: %w", err)
		}
		for _, row := range out {
			dst = append(dst, row[0])
		}
	}
	return dst, nil
}

// BenignAnomaly reports whether the transition scores above the decision
// threshold. It implements policy.Filter.
func (f *Filter) BenignAnomaly(tr env.Transition) bool {
	benign := f.Score(tr) >= f.threshold
	if benign {
		mRejected.Inc()
	} else {
		mAccepted.Inc()
	}
	return benign
}

// Threshold returns the filter's decision threshold.
func (f *Filter) Threshold() float64 { return f.threshold }

// SetThreshold adjusts the decision threshold (used to trace the ROC
// curve).
func (f *Filter) SetThreshold(t float64) { f.threshold = t }

// Save persists the trained network.
func (f *Filter) Save(w io.Writer) error { return f.net.Save(w) }

// Load restores a filter's network from r. The architecture must match the
// filter's encoder.
func (f *Filter) Load(r io.Reader) error {
	net, err := nn.Load(r)
	if err != nil {
		return err
	}
	if net.Inputs() != f.enc.Dim() || net.Outputs() != 1 {
		return fmt.Errorf("anomaly: model shape %d->%d incompatible with encoder dim %d",
			net.Inputs(), net.Outputs(), f.enc.Dim())
	}
	f.net = net
	return nil
}
