// Officepilot: run the Jarvis pipeline on a completely different IoT
// environment — a small office — demonstrating the framework's context
// independence. Same code path as the smart home: observe a learning
// phase, learn P_safe, flag an attack, and train a constrained
// energy-saving agent.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"jarvis"
	"jarvis/internal/env"
	"jarvis/internal/policy"
	"jarvis/internal/reward"
	"jarvis/internal/rl"
	"jarvis/internal/smartoffice"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	office := smartoffice.New()
	fmt.Printf("office: %d devices, %d composite states\n",
		office.Env.K(), office.Env.NumStateCombinations())

	// Two weeks of office life.
	rng := rand.New(rand.NewSource(21))
	start := time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC)
	episodes, err := office.Workdays(start, 14, smartoffice.DefaultWorkday(), rng)
	if err != nil {
		return err
	}

	sys, err := jarvis.New(office.Env, jarvis.Config{Seed: 21})
	if err != nil {
		return err
	}
	sys.Learn(episodes)
	fmt.Printf("learned P_safe: %d transitions\n", sys.SafeTable().Len())

	// Attack: kill the server-closet cooler at 03:00 on a fresh day.
	day, _, err := office.Workday(start.AddDate(0, 0, 30), office.InitialState(), smartoffice.DefaultWorkday(), rng)
	if err != nil {
		return err
	}
	actions := make([]env.Action, day.Len())
	for i, a := range day.Actions {
		actions[i] = a.Clone()
	}
	actions[3*60][office.ServerCooler] = 0
	mal, err := env.ReplayActions(office.Env, day.States[0], day.Start, day.I, actions)
	if err != nil {
		return err
	}
	flags, err := sys.Audit([]env.Episode{mal})
	if err != nil {
		return err
	}
	fmt.Printf("server-cooler kill at 03:00 → %d transition(s) flagged\n", len(flags))

	// Active learning (§VI-F): facilities confirms the flag is malicious.
	al := policy.NewActiveLearner(office.Env, sys.SafeTable())
	stats := al.Review(flags, policy.OracleFunc(func(policy.Violation) policy.Feedback {
		return policy.FeedbackMalicious
	}))
	fmt.Printf("active review: %d asked, %d confirmed malicious\n\n", stats.Asked, stats.Confirmed)

	// Constrained energy optimization.
	rs, err := reward.New(office.Env, reward.Config{
		Functionalities: []reward.Functionality{
			{Name: "energy", Weight: 1, F: office.EnergyReward()},
		},
		Preferred: sys.PreferredTimes(episodes),
		Instances: 1440,
	})
	if err != nil {
		return err
	}
	trainStats, err := sys.Train(rl.SimConfig{
		Initial: office.InitialState(),
		Reward:  rs,
	}, jarvis.TrainConfig{Agent: rl.AgentConfig{
		Episodes: 60, DecideEvery: 15, ReplayEvery: 4,
		Actionable: func(dev int) bool {
			return dev != office.Badge && dev != office.Occupancy && dev != office.ServerCooler
		},
	}})
	if err != nil {
		return err
	}
	fmt.Printf("trained %d episodes with %d safety violations\n",
		len(trainStats.EpisodeRewards), trainStats.Violations)

	state := office.InitialState()
	for _, minute := range []int{9 * 60, 14 * 60, 22 * 60} {
		act, err := sys.Recommend(state, minute)
		if err != nil {
			return err
		}
		fmt.Printf("at %02d:%02d recommend %s\n", minute/60, minute%60, office.Env.FormatAction(act))
	}
	return nil
}
