// Quickstart: wire the whole Jarvis pipeline on the 11-device smart home —
// simulate a one-week learning phase, learn the safe-transition table
// P_safe, train the constrained optimizer for an energy-saving goal, and
// ask for safe action recommendations.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"jarvis"
	"jarvis/internal/dataset"
	"jarvis/internal/reward"
	"jarvis/internal/rl"
	"jarvis/internal/smarthome"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The environment: the paper's k=11 device smart home.
	home := smarthome.NewFullHome()
	fmt.Printf("home: %d devices, %d composite states\n",
		home.K(), home.Env.NumStateCombinations())

	// 2. The learning phase: one week of natural resident behavior.
	rng := rand.New(rand.NewSource(42))
	gen := dataset.NewGenerator(home, dataset.HomeAConfig())
	days, err := gen.Days(time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC), 7, rng)
	if err != nil {
		return err
	}
	episodes := dataset.Episodes(days)

	sys, err := jarvis.New(home.Env, jarvis.Config{Seed: 42})
	if err != nil {
		return err
	}
	sys.Learn(episodes)
	fmt.Printf("learned P_safe: %d whitelisted transitions\n", sys.SafeTable().Len())

	// Manual fail-safe (Section V-B1): HVAC off is always safe.
	if err := sys.AllowManual(home.Thermostat, smarthome.ThermostatActOff); err != nil {
		return err
	}

	// 3. The goal: mostly energy conservation, with cost and comfort as
	// secondary objectives.
	ctx := days[len(days)-1].Context
	rs, err := reward.New(home.Env, reward.Config{
		Functionalities: smarthome.Functionalities(
			home.Env, home.TempSensor, home.Thermostat, ctx.Prices, 0.6, 0.2, 0.2),
		Preferred: sys.PreferredTimes(episodes),
		Instances: smarthome.InstancesPerDay,
	})
	if err != nil {
		return err
	}
	fmt.Printf("utility/dis-utility ratio χ = %.2f\n", rs.Chi())

	// 4. Train the constrained optimizer (Algorithm 2).
	stats, err := sys.Train(rl.SimConfig{
		Initial: home.InitialState(),
		Reward:  rs,
	}, jarvis.TrainConfig{Agent: rl.AgentConfig{
		Episodes: 40, DecideEvery: 15, ReplayEvery: 4,
	}})
	if err != nil {
		return err
	}
	fmt.Printf("trained %d episodes, final ε=%.2f, safety violations: %d\n",
		len(stats.EpisodeRewards), stats.FinalEpsilon, stats.Violations)

	// 5. Ask Jarvis what to do at a few times of day.
	state := home.InitialState()
	for _, minute := range []int{8 * 60, 13 * 60, 20 * 60} {
		act, err := sys.Recommend(state, minute)
		if err != nil {
			return err
		}
		fmt.Printf("at %02d:%02d in %s\n  recommend %s\n",
			minute/60, minute%60, home.Env.FormatState(state), home.Env.FormatAction(act))
	}
	return nil
}
