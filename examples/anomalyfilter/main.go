// Anomalyfilter: train the SPL's ANN benign-anomaly filter on SIMADL-style
// labelled data and show it classifying fresh activity — the component
// that keeps fridge doors left open and 3am snack ovens from being flagged
// as security violations.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"jarvis"
	"jarvis/internal/anomaly"
	"jarvis/internal/dataset"
	"jarvis/internal/metrics"
	"jarvis/internal/smarthome"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	home := smarthome.NewFullHome()
	rng := rand.New(rand.NewSource(3))
	gen := dataset.NewGenerator(home, dataset.HomeAConfig())
	start := time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC)

	days, err := gen.Days(start, 7, rng)
	if err != nil {
		return err
	}

	sys, err := jarvis.New(home.Env, jarvis.Config{
		Seed:   3,
		Filter: true,
		FilterConfig: anomaly.Config{
			Hidden: 32, Epochs: 25, LR: 0.01,
		},
	})
	if err != nil {
		return err
	}

	// Training data TD: labelled benign anomalies + normal transitions.
	anoms, err := dataset.SynthesizeAnomalies(home, days, 3000, rng)
	if err != nil {
		return err
	}
	normals, err := dataset.NormalSamples(days, 3000, rng)
	if err != nil {
		return err
	}
	loss, err := sys.TrainFilter(append(anoms, normals...))
	if err != nil {
		return err
	}
	fmt.Printf("ANN trained on %d samples, final loss %.4f\n", len(anoms)+len(normals), loss)

	// Evaluate on held-out data.
	evalDays, err := gen.Days(start.AddDate(0, 0, 30), 3, rng)
	if err != nil {
		return err
	}
	evalAnoms, err := dataset.SynthesizeAnomalies(home, evalDays, 500, rng)
	if err != nil {
		return err
	}
	evalNormals, err := dataset.NormalSamples(evalDays, 500, rng)
	if err != nil {
		return err
	}
	var conf metrics.Confusion
	filter := sys.Filter()
	for _, s := range append(evalAnoms, evalNormals...) {
		conf.Add(filter.BenignAnomaly(s.Tr), s.Benign)
	}
	fmt.Printf("held-out classification: %s\n\n", conf)

	// Show a few concrete verdicts.
	fmt.Println("sample verdicts:")
	for i := 0; i < 4 && i < len(evalAnoms); i++ {
		tr := evalAnoms[i].Tr
		fmt.Printf("  %02d:%02d %-46s score %.2f → benign anomaly: %v\n",
			tr.Instance/60, tr.Instance%60,
			home.Env.FormatAction(tr.Act), filter.Score(tr), filter.BenignAnomaly(tr))
	}
	for i := 0; i < 4 && i < len(evalNormals); i++ {
		tr := evalNormals[i].Tr
		fmt.Printf("  %02d:%02d %-46s score %.2f → benign anomaly: %v\n",
			tr.Instance/60, tr.Instance%60,
			home.Env.FormatAction(tr.Act), filter.Score(tr), filter.BenignAnomaly(tr))
	}
	return nil
}
