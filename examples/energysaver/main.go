// Energysaver: quantify what Jarvis saves over a week. For each day, the
// same exogenous context (weather, prices, occupancy) is played twice —
// once under normal device behavior (apps running context-free) and once
// under Jarvis's constrained optimizer with an energy-heavy goal — and the
// metered kWh and electricity cost are compared.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"jarvis"
	"jarvis/internal/dataset"
	"jarvis/internal/env"
	"jarvis/internal/reward"
	"jarvis/internal/rl"
	"jarvis/internal/smarthome"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	home := smarthome.NewFullHome()
	rng := rand.New(rand.NewSource(7))
	gen := dataset.NewGenerator(home, dataset.HomeAConfig())
	start := time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC)

	// Learning phase.
	learning, err := gen.Days(start, 7, rng)
	if err != nil {
		return err
	}
	episodes := dataset.Episodes(learning)
	sys, err := jarvis.New(home.Env, jarvis.Config{Seed: 7})
	if err != nil {
		return err
	}
	sys.Learn(episodes)
	if err := sys.AllowManual(home.Thermostat, smarthome.ThermostatActOff); err != nil {
		return err
	}
	pref := sys.PreferredTimes(episodes)

	fmt.Println("day         normal kWh   jarvis kWh   saved    normal $   jarvis $")
	var totalSavedKWh, totalSavedUSD float64
	evalStart := start.AddDate(0, 0, 14)
	s0 := home.InitialState()
	for d := 0; d < 5; d++ {
		ctx := dataset.NewDayContext(evalStart.AddDate(0, 0, d), dataset.DefaultContext(), rng)

		// Normal behavior on this exact context.
		normal, _, err := gen.SimulateDay(ctx, s0, rng)
		if err != nil {
			return err
		}

		// Jarvis on the same context.
		rs, err := reward.New(home.Env, reward.Config{
			Functionalities: smarthome.Functionalities(
				home.Env, home.TempSensor, home.Thermostat, ctx.Prices, 0.7, 0.2, 0.1),
			Preferred: pref,
			Instances: smarthome.InstancesPerDay,
		})
		if err != nil {
			return err
		}
		thermal := smarthome.NewThermal(smarthome.DefaultThermalConfig())
		exo := func(s env.State, t int) env.State {
			s = s.Clone()
			thermal.Step(ctx.Outdoor[t-1], s[home.Thermostat])
			if s[home.TempSensor] != smarthome.TempOff && s[home.TempSensor] != smarthome.TempFireAlarm {
				s[home.TempSensor] = thermal.SensorState()
			}
			return s
		}
		if _, err := sys.Train(rl.SimConfig{
			Initial:   home.InitialState(),
			Reward:    rs,
			Exo:       exo,
			ResetHook: thermal.Reset,
		}, jarvis.TrainConfig{Agent: rl.AgentConfig{
			Episodes: 160, DecideEvery: 15, ReplayEvery: 4,
			Actionable: func(dev int) bool {
				return dev != home.Lock && dev != home.DoorSensor && dev != home.TempSensor
			},
		}}); err != nil {
			return err
		}

		jKWh, jUSD, err := evaluateDay(home, sys, ctx)
		if err != nil {
			return err
		}
		nKWh := normal.EnergyKWh(home.Env)
		nUSD := normal.CostUSD(home.Env)
		fmt.Printf("%s   %8.2f   %10.2f   %5.2f   %8.2f   %8.2f\n",
			ctx.Date.Format("2006-01-02"), nKWh, jKWh, nKWh-jKWh, nUSD, jUSD)
		totalSavedKWh += nKWh - jKWh
		totalSavedUSD += nUSD - jUSD
	}
	fmt.Printf("\nJarvis saved %.1f kWh and $%.2f over 5 days\n", totalSavedKWh, totalSavedUSD)
	return nil
}

// evaluateDay replays Jarvis's greedy policy over the day's context and
// meters it.
func evaluateDay(home *smarthome.FullHome, sys *jarvis.System, ctx *dataset.DayContext) (kwh, usd float64, err error) {
	state := home.InitialState()
	thermal := smarthome.NewThermal(smarthome.DefaultThermalConfig())
	for t := 0; t < smarthome.InstancesPerDay; t++ {
		act := env.NoOp(home.Env.K())
		if t%15 == 0 {
			act, err = sys.Recommend(state, t)
			if err != nil {
				return 0, 0, err
			}
		}
		next, err := home.Env.Transition(state, act)
		if err != nil {
			// Stale recommendation (state moved exogenously): idle.
			next = state.Clone()
		}
		thermal.Step(ctx.Outdoor[t], next[home.Thermostat])
		if next[home.TempSensor] != smarthome.TempOff {
			next[home.TempSensor] = thermal.SensorState()
		}
		p := smarthome.PowerDraw(home.Env, next)
		kwh += p / 1000 / 60
		usd += p / 1000 / 60 * ctx.Prices[t]
		state = next
	}
	return kwh, usd, nil
}
