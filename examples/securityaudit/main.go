// Securityaudit: engineer the paper's 214-violation corpus into benign
// days and show the SPL flagging them — a per-type detection breakdown
// plus a few concrete flagged transitions.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"jarvis"
	"jarvis/internal/attack"
	"jarvis/internal/dataset"
	"jarvis/internal/env"
	"jarvis/internal/smarthome"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	home := smarthome.NewFullHome()
	rng := rand.New(rand.NewSource(11))
	gen := dataset.NewGenerator(home, dataset.HomeAConfig())
	start := time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC)

	learning, err := gen.Days(start, 7, rng)
	if err != nil {
		return err
	}
	sys, err := jarvis.New(home.Env, jarvis.Config{Seed: 11})
	if err != nil {
		return err
	}
	sys.Learn(dataset.Episodes(learning))
	fmt.Printf("learning phase complete: %d safe transitions\n\n", sys.SafeTable().Len())

	baseDays, err := gen.Days(start.AddDate(0, 0, 30), 3, rng)
	if err != nil {
		return err
	}
	corpus := attack.Corpus(home)
	fmt.Printf("attack corpus: %d violations", len(corpus))
	for typ, n := range attack.CountByType(corpus) {
		fmt.Printf("  %v=%d", typ, n)
	}
	fmt.Println()

	detected := map[attack.Type]int{}
	total := map[attack.Type]int{}
	shown := 0
	for _, v := range corpus {
		total[v.Type]++
		if v.TransitionBased() {
			day := baseDays[rng.Intn(len(baseDays))]
			ep, at, ok, err := attack.Inject(home.Env, day.Episode, v, rng)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			flags, err := sys.Audit([]env.Episode{ep})
			if err != nil {
				return err
			}
			for _, f := range flags {
				if f.Instance >= at && f.Instance < at+len(v.Steps) {
					detected[v.Type]++
					if shown < 5 {
						shown++
						fmt.Printf("  FLAGGED %-22s %-28s at %02d:%02d  %s\n",
							v.Type, v.Name, f.Instance/60, f.Instance%60,
							home.Env.FormatAction(f.Act))
					}
					break
				}
			}
		} else {
			day := baseDays[rng.Intn(len(baseDays))]
			t := rng.Intn(day.Episode.Len())
			_, _, denials := home.Env.Apply(day.Episode.States[t], v.Requests)
			if len(denials) > 0 {
				detected[v.Type]++
			}
		}
	}

	fmt.Println("\ndetection by type:")
	for _, typ := range []attack.Type{
		attack.Type1TASafety, attack.Type2AccessControl, attack.Type3Conflict,
		attack.Type4MaliciousApp, attack.Type5Insider,
	} {
		fmt.Printf("  %-22s %3d/%3d (%.0f%%)\n",
			typ, detected[typ], total[typ], 100*float64(detected[typ])/float64(total[typ]))
	}
	return nil
}
