module jarvis

go 1.22
