// Package jarvis is a constrained reinforcement-learning framework for IoT
// environments, reproducing "Jarvis: Moving Towards a Smarter Internet of
// Things" (Mudgerikar & Bertino, ICDCS 2020).
//
// Jarvis watches an IoT environment during a learning phase, learns which
// state transitions occur naturally (filtering benign anomalies with a
// small neural network), and whitelists them as the safe-transition table
// P_safe. A Q-learning agent then optimizes user-defined functionality
// goals — energy use, electricity cost, comfort — inside that whitelist:
// it can act only along transitions the environment has exhibited on its
// own, so optimization can never become unsafe.
//
// The facade in this package wires the full pipeline:
//
//	sys, err := jarvis.New(home.Env, jarvis.Config{...})
//	sys.Learn(learningEpisodes)           // Algorithm 1: build P_safe
//	sys.Train(simEnvConfig, trainConfig)  // Algorithm 2: learn Q
//	action := sys.Recommend(state, t)     // best safe action now
//	violations := sys.Audit(episodes)     // flag unsafe transitions
//
// The building blocks live in internal packages (devices, environment FSM,
// event bus, neural networks, SPL, rewards, RL) and the experiment
// harness under internal/experiment regenerates every table and figure of
// the paper; see DESIGN.md and EXPERIMENTS.md.
package jarvis

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"jarvis/internal/anomaly"
	"jarvis/internal/compiled"
	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/policy"
	"jarvis/internal/reward"
	"jarvis/internal/rl"
	"jarvis/internal/trace"
)

// Config parameterizes a Jarvis system for one environment.
type Config struct {
	// Seed drives all stochastic components; runs are reproducible.
	Seed int64
	// ThreshEnv is Algorithm 1's instance-count threshold (0, the paper's
	// smart-home recommendation, whitelists every observed transition).
	ThreshEnv int
	// Filter, when true, trains the ANN benign-anomaly filter before
	// learning policies. Training data must then be supplied to
	// TrainFilter.
	Filter bool
	// FilterConfig tunes the ANN (zero value = paper defaults: one hidden
	// layer, trained by backprop).
	FilterConfig anomaly.Config
}

// System is a Jarvis instance bound to one IoT environment.
type System struct {
	env      *env.Environment
	cfg      Config
	rng      *rand.Rand
	filter   *anomaly.Filter
	spl      *policy.Learner
	table    *policy.Table
	agent    *rl.Agent
	sim      *rl.SimEnv
	degraded int
	// compiled, when enabled, caches the agent's greedy policy as a dense
	// state×time-bucket table; steady-state RecommendDecision becomes a
	// bounds-checked array load. Nil until EnableCompiledPolicy.
	compiled *compiled.Cache
}

// New creates a Jarvis system for the environment.
func New(e *env.Environment, cfg Config) (*System, error) {
	if e == nil {
		return nil, errors.New("jarvis: nil environment")
	}
	s := &System{
		env: e,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Filter {
		f, err := anomaly.NewFilter(e, cfg.FilterConfig, s.rng)
		if err != nil {
			return nil, fmt.Errorf("jarvis: %w", err)
		}
		s.filter = f
	}
	var filt policy.Filter
	if s.filter != nil {
		filt = s.filter
	}
	s.spl = policy.NewLearner(e, policy.Config{
		ThreshEnv: cfg.ThreshEnv,
		Filter:    filt,
		AllowIdle: true,
	})
	return s, nil
}

// Env returns the bound environment.
func (s *System) Env() *env.Environment { return s.env }

// TrainFilter fits the benign-anomaly ANN on user-labelled data. It must
// run before Learn for the filter to take effect.
func (s *System) TrainFilter(data []anomaly.Labeled) (loss float64, err error) {
	if s.filter == nil {
		return 0, errors.New("jarvis: system created without Filter enabled")
	}
	return s.filter.Train(data, s.cfg.FilterConfig, s.rng)
}

// Filter exposes the trained benign-anomaly filter (nil when disabled).
func (s *System) Filter() *anomaly.Filter { return s.filter }

// Learn feeds learning-phase episodes through the SPL (Algorithm 1) and
// finalizes P_safe. It may be called repeatedly; each call rebuilds the
// table from all observations so far.
func (s *System) Learn(episodes []env.Episode) {
	s.spl.ObserveAll(episodes)
	s.table = s.spl.Table()
}

// AllowManual adds a manual safety policy (Section V-B1): the device
// action becomes unconditionally safe. Call after Learn.
func (s *System) AllowManual(dev int, act device.ActionID) error {
	if s.table == nil {
		return errors.New("jarvis: Learn must run before AllowManual")
	}
	if dev < 0 || dev >= s.env.K() {
		return fmt.Errorf("jarvis: unknown device %d", dev)
	}
	s.table.AllowManual(dev, act)
	return nil
}

// SafeTable returns the learned P_safe (nil before Learn).
func (s *System) SafeTable() *policy.Table { return s.table }

// PreferredTimes indexes the learning episodes' action timings for the
// dis-utility estimate; pass the same episodes given to Learn.
func (s *System) PreferredTimes(episodes []env.Episode) *reward.PreferredTimes {
	return reward.LearnPreferredTimes(s.env, episodes)
}

// TrainConfig parameterizes the optimizer (Algorithm 2).
type TrainConfig struct {
	// Agent tunes the ε-greedy constrained agent; zero values take the
	// package defaults. Rng is overridden with the system's.
	Agent rl.AgentConfig
	// UseDNN selects the deep Q network instead of the tabular fallback.
	UseDNN bool
	// DNN tunes the network when UseDNN is set.
	DNN rl.DQNConfig
	// Buckets is the tabular time resolution (default 24).
	Buckets int
}

// buildAgent wires the simulated environment (constrained by the learned
// P_safe) and an untrained agent — the shared front half of Train and
// Restore.
func (s *System) buildAgent(sim rl.SimConfig, cfg TrainConfig) (*rl.Agent, *rl.SimEnv, error) {
	if s.table == nil {
		return nil, nil, errors.New("jarvis: Learn must run before Train or Restore")
	}
	if sim.Safe == nil {
		sim.Safe = s.table
	}
	simEnv, err := rl.NewSimEnv(s.env, sim)
	if err != nil {
		return nil, nil, fmt.Errorf("jarvis: %w", err)
	}
	var q rl.QFunc
	if cfg.UseDNN {
		dqn, err := rl.NewDQN(s.env, sim.Reward.Instances(), cfg.DNN, s.rng)
		if err != nil {
			return nil, nil, fmt.Errorf("jarvis: %w", err)
		}
		q = dqn
	} else {
		buckets := cfg.Buckets
		if buckets <= 0 {
			buckets = 24
		}
		q = rl.NewTableQ(s.env, sim.Reward.Instances(), buckets, 0.25)
	}
	agentCfg := cfg.Agent
	agentCfg.Rng = s.rng
	agent, err := rl.NewAgent(simEnv, q, agentCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("jarvis: %w", err)
	}
	return agent, simEnv, nil
}

// Train builds the simulated RL environment (constrained by the learned
// P_safe) and runs Algorithm 2.
func (s *System) Train(sim rl.SimConfig, cfg TrainConfig) (rl.TrainStats, error) {
	agent, simEnv, err := s.buildAgent(sim, cfg)
	if err != nil {
		return rl.TrainStats{}, err
	}
	stats, err := agent.Train()
	if err != nil {
		return stats, fmt.Errorf("jarvis: %w", err)
	}
	s.agent = agent
	s.sim = simEnv
	s.invalidateCompiled()
	return stats, nil
}

// qPersister is the save/load surface both Q backends expose.
type qPersister interface {
	Save(io.Writer) error
	Load(io.Reader) error
}

// Restore rebuilds the optimizer from a Q function checkpoint written by
// SaveQ instead of retraining: the simulated environment and agent are
// wired exactly as Train would, then the Q values are loaded from r. The
// sim and cfg arguments must describe the same shape (instances, buckets /
// network architecture) the checkpoint was trained with; mismatches are
// reported as errors and leave the system untrained.
func (s *System) Restore(sim rl.SimConfig, cfg TrainConfig, r io.Reader) error {
	agent, simEnv, err := s.buildAgent(sim, cfg)
	if err != nil {
		return err
	}
	p, ok := agent.Q().(qPersister)
	if !ok {
		return fmt.Errorf("jarvis: Q backend %T is not restorable", agent.Q())
	}
	if err := p.Load(r); err != nil {
		return fmt.Errorf("jarvis: restore: %w", err)
	}
	s.agent = agent
	s.sim = simEnv
	s.invalidateCompiled()
	return nil
}

// SaveQ persists the trained Q function, the counterpart of Restore.
func (s *System) SaveQ(w io.Writer) error {
	if s.agent == nil {
		return errors.New("jarvis: Train must run before SaveQ")
	}
	p, ok := s.agent.Q().(qPersister)
	if !ok {
		return fmt.Errorf("jarvis: Q backend %T is not persistable", s.agent.Q())
	}
	return p.Save(w)
}

// QFingerprint digests the serialized Q function (SHA-256, hex). Two
// systems with equal fingerprints are in identical training states — the
// equality the crash-recovery harness and the replay verifier assert.
func (s *System) QFingerprint() (string, error) {
	var b bytes.Buffer
	if err := s.SaveQ(&b); err != nil {
		return "", err
	}
	sum := sha256.Sum256(b.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// TrainingViolations returns the number of unsafe transitions the trained
// agent's simulator recorded (always 0 for a properly constrained run).
func (s *System) TrainingViolations() int {
	if s.sim == nil {
		return 0
	}
	return s.sim.Violations()
}

// Recommend returns the best safe action for the given state and time
// instance. It requires a trained (or restored) system. The user may have
// taken some actions manually; Jarvis recommends from whatever state the
// environment reached.
//
// Recommend degrades instead of failing: when the Q function has diverged
// (NaN/Inf values — the agent already falls back internally) or the
// recommended action does not survive a transition check against the FSM,
// the safe NoOp is returned. Idling is whitelisted by P_safe (AllowIdle),
// so the fallback never violates the safety table. DegradedRecommendations
// counts how often the fallback fired.
func (s *System) Recommend(state env.State, t int) (env.Action, error) {
	return s.RecommendTraced(nil, state, t)
}

// RecommendTraced is Recommend with the RL action selection recorded as a
// child span of sp. A nil span (tracing disabled or the request unsampled)
// makes it behave exactly like Recommend.
func (s *System) RecommendTraced(sp *trace.Span, state env.State, t int) (env.Action, error) {
	if s.agent == nil {
		return nil, errors.New("jarvis: Train or Restore must run before Recommend")
	}
	if !s.env.ValidState(state) {
		return nil, errors.New("jarvis: invalid state")
	}
	act := s.agent.GreedyTraced(sp, state, t)
	if _, err := s.env.Transition(state, act); err != nil {
		s.degraded++
		return env.NoOp(s.env.K()), nil
	}
	return act, nil
}

// Agent exposes the trained agent (nil before Train or Restore) for
// instrumentation, diagnostics, and persistence surfaces.
func (s *System) Agent() *rl.Agent { return s.agent }

// LoadQ replaces the agent's Q values with a checkpoint written by SaveQ,
// keeping the existing agent, simulator, and exploration state intact —
// unlike Restore, which rebuilds the whole optimizer. It is the divergence
// watchdog's rollback primitive: on a trip the daemon loads the newest
// valid generation into the live agent without disturbing the replay
// buffer or counters accumulated since.
func (s *System) LoadQ(r io.Reader) error {
	if s.agent == nil {
		return errors.New("jarvis: Train or Restore must run before LoadQ")
	}
	p, ok := s.agent.Q().(qPersister)
	if !ok {
		return fmt.Errorf("jarvis: Q backend %T is not restorable", s.agent.Q())
	}
	if err := p.Load(r); err != nil {
		return fmt.Errorf("jarvis: load q: %w", err)
	}
	s.invalidateCompiled()
	return nil
}

// ObserveTransition feeds one live transition — the environment was in
// prev at instance t and act was applied — into the agent's replay buffer
// for online learning, and returns the successor state and the reward the
// transition earned. The transition must be FSM-valid; safety auditing is
// the caller's concern (jarvisd audits every event regardless of whether
// learning ingestion is shed).
func (s *System) ObserveTransition(prev env.State, act env.Action, t int) (env.State, float64, error) {
	if s.agent == nil {
		return nil, 0, errors.New("jarvis: Train or Restore must run before ObserveTransition")
	}
	if !s.env.ValidState(prev) {
		return nil, 0, errors.New("jarvis: invalid state")
	}
	next, err := s.env.Transition(prev, act)
	if err != nil {
		return nil, 0, fmt.Errorf("jarvis: observe: %w", err)
	}
	var r float64
	if s.sim != nil && s.sim.Reward() != nil {
		r = s.sim.Reward().R(prev, act, t)
	}
	s.agent.Observe(rl.Experience{
		S: prev, T: t, Minis: s.agent.Minis().Of(act), R: r,
		Next: next, NextT: t + s.agent.DecideEvery(),
	})
	return next, r, nil
}

// LearnOnline runs one replay update against the online experience stream,
// sampling with the supplied RNG (jarvisd derives it deterministically
// from the accepted-transition count so crash recovery replays the exact
// update sequence). Reports whether an update ran — false until the
// buffer holds a full mini-batch.
func (s *System) LearnOnline(rng *rand.Rand) (bool, error) {
	return s.LearnOnlineTraced(nil, rng)
}

// LearnOnlineTraced is LearnOnline with the replay update recorded as a
// child span of sp (batch size and loss annotated); nil span = LearnOnline.
func (s *System) LearnOnlineTraced(sp *trace.Span, rng *rand.Rand) (bool, error) {
	if s.agent == nil {
		return false, errors.New("jarvis: Train or Restore must run before LearnOnline")
	}
	ran, err := s.agent.LearnStepTraced(sp, rng)
	if err != nil {
		return ran, fmt.Errorf("jarvis: learn online: %w", err)
	}
	if ran {
		// The Q values changed (or a watchdog rollback replaced them mid-
		// step, which invalidates through LoadQ as well); compiled decisions
		// may no longer match the agent's.
		s.invalidateCompiled()
	}
	return ran, nil
}

// Decision is one audited recommendation: the chosen safe action, the Q
// value backing it, and whether the system fell back to the degraded NoOp.
// The daemon's structured decision log records one entry per Decision so
// safety behavior is auditable offline.
type Decision struct {
	Action   env.Action
	Value    float64
	Degraded bool
}

// RecommendDecision is Recommend plus the audit surface: it reports the Q
// value of the chosen action and whether this recommendation degraded to
// the safe NoOp (non-finite Q values or a failed FSM transition check).
func (s *System) RecommendDecision(state env.State, t int) (Decision, error) {
	return s.RecommendDecisionTraced(nil, state, t)
}

// RecommendDecisionTraced is RecommendDecision with the selection recorded
// under sp; nil span = RecommendDecision.
//
// When a compiled policy is enabled and clean, unsampled requests (nil
// span) are served straight from the table: one state-key encode and a
// bounds-checked array load, zero allocations. Sampled requests take the
// agent path so traces keep covering the full selection pipeline — the
// decisions are bit-identical either way, which the golden tests pin.
func (s *System) RecommendDecisionTraced(sp *trace.Span, state env.State, t int) (Decision, error) {
	if c := s.compiled; c != nil && sp == nil {
		if p := c.Policy(); p != nil {
			if !s.env.ValidState(state) {
				return Decision{}, errors.New("jarvis: invalid state")
			}
			if d, ok := p.Lookup(state, t); ok {
				c.Hit()
				if d.Degraded {
					s.degraded++
				}
				// d.Action aliases the shared palette; Decision consumers
				// (the daemon, the decision log) treat actions as read-only.
				return Decision{Action: d.Action, Value: d.Value, Degraded: d.Degraded}, nil
			}
			c.Miss()
		} else if !c.Disabled() {
			c.Miss()
		}
	}
	before := s.DegradedRecommendations()
	act, err := s.RecommendTraced(sp, state, t)
	if err != nil {
		return Decision{}, err
	}
	d := Decision{Action: act, Degraded: s.DegradedRecommendations() > before}
	if !d.Degraded {
		d.Value = s.agent.LastValue()
	}
	return d, nil
}

// EnableCompiledPolicy attaches a compiled-policy cache and builds the
// first table synchronously. lock must be the lock that guards every
// mutation of this system (the daemon passes its state mutex; the caller
// must not hold it here). The returned error reports why compilation is
// unavailable — compiled.ErrTooLarge marks a state×bucket product beyond
// opts.MaxEntries, permanently disabling the cache — and the system keeps
// serving through the agent path in every error case, so callers may treat
// it as advisory.
func (s *System) EnableCompiledPolicy(lock sync.Locker, opts compiled.Options) error {
	if s.agent == nil || s.sim == nil {
		return errors.New("jarvis: Train or Restore must run before EnableCompiledPolicy")
	}
	c := compiled.NewCache(lock, func() (*compiled.Policy, error) {
		return compiled.Compile(s.env, s.agent, s.sim.Instances(), opts)
	})
	s.compiled = c
	return c.RebuildNow()
}

// CompiledPolicy exposes the compiled-policy cache (nil until
// EnableCompiledPolicy) for health surfaces and tests.
func (s *System) CompiledPolicy() *compiled.Cache { return s.compiled }

// invalidateCompiled marks the compiled table stale after any mutation of
// its inputs (Q values, P_safe, the agent itself). A no-op until
// EnableCompiledPolicy. Callers in the daemon hold the state lock, which
// is the cache's correctness contract.
func (s *System) invalidateCompiled() {
	if s.compiled != nil {
		s.compiled.Invalidate()
	}
}

// DegradedRecommendations counts the recommendations that fell back to the
// safe NoOp — because the Q function produced non-finite values or the
// greedy action failed the FSM transition check. A nonzero count signals a
// diverged or stale model that should be retrained or restored.
func (s *System) DegradedRecommendations() int {
	n := s.degraded
	if s.agent != nil {
		n += s.agent.Degraded()
	}
	return n
}

// Audit flags every transition in the episodes that P_safe does not
// sanction — the enforcement path of the security evaluation.
func (s *System) Audit(episodes []env.Episode) ([]policy.Violation, error) {
	if s.table == nil {
		return nil, errors.New("jarvis: Learn must run before Audit")
	}
	return policy.FlagEpisodes(s.env, s.table, episodes), nil
}

// SaveTable persists the learned P_safe as JSON.
func (s *System) SaveTable(w io.Writer) error {
	if s.table == nil {
		return errors.New("jarvis: nothing learned yet")
	}
	return s.table.Save(w)
}

// LoadTable restores a previously saved P_safe, replacing any learned one.
func (s *System) LoadTable(r io.Reader) error {
	t, err := policy.LoadTable(r)
	if err != nil {
		return err
	}
	s.table = t
	s.invalidateCompiled()
	return nil
}
