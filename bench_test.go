// Benchmark harness: one testing.B benchmark per evaluation table and
// figure of the paper (reduced scale; run `cmd/jarvis <name>` for the
// paper-scale regeneration), the ablation benches DESIGN.md calls out, and
// micro-benchmarks of the hot substrate paths.
package jarvis_test

import (
	"math/rand"
	"testing"
	"time"

	"jarvis/internal/anomaly"
	"jarvis/internal/attack"
	"jarvis/internal/dataset"
	"jarvis/internal/env"
	"jarvis/internal/experiment"
	"jarvis/internal/nn"
	"jarvis/internal/policy"
	"jarvis/internal/reward"
	"jarvis/internal/rl"
	"jarvis/internal/smarthome"
	"jarvis/internal/smartoffice"
)

// --- Tables and figures -------------------------------------------------

func BenchmarkTable1FSM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiment.Table1()
		if len(res.Rows) != 5 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable2SafePolicyLearning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Table2(experiment.Table2Config{Seed: int64(i), LearningDays: 3})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable3ActionQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Table3(experiment.Table3Config{Seed: int64(i), LearningDays: 5})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 8 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkSecurityDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.Security(experiment.SecurityConfig{
			Seed: int64(i), LearningDays: 3, EpisodesPerViolation: 1, BaseDays: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Episodes != 214 {
			b.Fatal("bad corpus")
		}
	}
}

func BenchmarkFig5ROC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.ROC(experiment.ROCConfig{
			Seed: int64(i), LearningDays: 2,
			TrainAnomalies: 300, TrainNormals: 300,
			EvalEpisodes: 60, FilterEpochs: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Evaluated == 0 {
			b.Fatal("nothing evaluated")
		}
	}
}

func benchFunctionality(b *testing.B, m experiment.Metric) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Functionality(experiment.FunctionalityConfig{
			Seed: int64(i), LearningDays: 3, Metric: m,
			Weights: []float64{0.5}, Days: 1, Episodes: 30, Restarts: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Jarvis) != 1 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFig6EnergyConservation(b *testing.B) { benchFunctionality(b, experiment.MetricEnergy) }
func BenchmarkFig7CostMinimization(b *testing.B)   { benchFunctionality(b, experiment.MetricCost) }
func BenchmarkFig8TemperatureOptimization(b *testing.B) {
	benchFunctionality(b, experiment.MetricComfort)
}

func BenchmarkFig9BenefitSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.BenefitSpace(experiment.BenefitSpaceConfig{
			Seed: int64(i), LearningDays: 3, Episodes: 15,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.ConstrainedRewards) != 15 {
			b.Fatal("bad series")
		}
	}
}

// --- Ablations (DESIGN.md §4) --------------------------------------------

// benchLab builds a small shared lab once per benchmark.
func benchLab(b *testing.B, days int) (*smarthome.FullHome, []*dataset.Day) {
	b.Helper()
	home := smarthome.NewFullHome()
	gen := dataset.NewGenerator(home, dataset.HomeAConfig())
	ds, err := gen.Days(time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC), days, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	return home, ds
}

// trainAgent runs a small constrained training loop with the given Q
// backend and replay cadence.
func trainAgent(b *testing.B, home *smarthome.FullHome, days []*dataset.Day, useDNN bool, replayEvery int, lossGate float64) {
	b.Helper()
	e := home.Env
	eps := dataset.Episodes(days)
	spl := policy.NewLearner(e, policy.Config{AllowIdle: true})
	spl.ObserveAll(eps)
	table := spl.Table()
	table.AllowManual(home.Thermostat, smarthome.ThermostatActOff)

	rs, err := reward.New(e, reward.Config{
		Functionalities: smarthome.Functionalities(
			e, home.TempSensor, home.Thermostat, days[0].Context.Prices, 0.6, 0.2, 0.2),
		Preferred: reward.LearnPreferredTimes(e, eps),
		Instances: smarthome.InstancesPerDay,
	})
	if err != nil {
		b.Fatal(err)
	}
	sim, err := rl.NewSimEnv(e, rl.SimConfig{Initial: home.InitialState(), Reward: rs, Safe: table})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var q rl.QFunc
	if useDNN {
		dqn, err := rl.NewDQN(e, smarthome.InstancesPerDay, rl.DQNConfig{Hidden: []int{32}}, rng)
		if err != nil {
			b.Fatal(err)
		}
		q = dqn
	} else {
		q = rl.NewTableQ(e, smarthome.InstancesPerDay, 24, 0.25)
	}
	agent, err := rl.NewAgent(sim, q, rl.AgentConfig{
		Episodes: 4, DecideEvery: 30, ReplayEvery: replayEvery,
		PreferableLoss: lossGate,
		Rng:            rng,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := agent.Train(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationTabularQ vs BenchmarkAblationDNNQ: the practical
// deep-learning design of §V-A7 (mini-action DQN head) against the exact
// tabular fallback.
func BenchmarkAblationTabularQ(b *testing.B) {
	home, days := benchLab(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trainAgent(b, home, days, false, 4, 0)
	}
}

func BenchmarkAblationDNNQ(b *testing.B) {
	home, days := benchLab(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trainAgent(b, home, days, true, 4, 0)
	}
}

// BenchmarkAblationReplayEvery1 vs 16: the cost of the paper's
// replay-each-step learning versus a throttled cadence.
func BenchmarkAblationReplayEvery1(b *testing.B) {
	home, days := benchLab(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trainAgent(b, home, days, false, 1, 0)
	}
}

func BenchmarkAblationReplayEvery16(b *testing.B) {
	home, days := benchLab(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trainAgent(b, home, days, false, 16, 0)
	}
}

// BenchmarkAblationEpsilonDecayGated: Algorithm 2's loss-gated ε decay
// (decay only when loss ≤ L_p) vs always-decay.
func BenchmarkAblationEpsilonDecayGated(b *testing.B) {
	home, days := benchLab(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trainAgent(b, home, days, false, 4, 0.05) // gate on small loss
	}
}

// BenchmarkAblationFilterOn vs Off: Algorithm 1 with and without the ANN
// benign-anomaly pre-filter.
func BenchmarkAblationFilterOff(b *testing.B) {
	home, days := benchLab(b, 3)
	eps := dataset.Episodes(days)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spl := policy.NewLearner(home.Env, policy.Config{AllowIdle: true})
		spl.ObserveAll(eps)
		if spl.Table().Len() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkAblationFilterOn(b *testing.B) {
	home, days := benchLab(b, 3)
	eps := dataset.Episodes(days)
	rng := rand.New(rand.NewSource(3))
	filter, err := anomaly.NewFilter(home.Env, anomaly.Config{Hidden: 16}, rng)
	if err != nil {
		b.Fatal(err)
	}
	anoms, err := dataset.SynthesizeAnomalies(home, days, 200, rng)
	if err != nil {
		b.Fatal(err)
	}
	normals, err := dataset.NormalSamples(days, 200, rng)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := filter.Train(append(anoms, normals...), anomaly.Config{Epochs: 5}, rng); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spl := policy.NewLearner(home.Env, policy.Config{AllowIdle: true, Filter: filter})
		spl.ObserveAll(eps)
		if spl.Table().Len() == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Substrate micro-benchmarks ------------------------------------------

func BenchmarkEnvTransition(b *testing.B) {
	home, _ := benchLab(b, 1)
	s := home.InitialState()
	a := env.NoOp(home.Env.K())
	a[home.LivingLight] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := home.Env.Transition(s, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStateKeyRoundTrip(b *testing.B) {
	home, _ := benchLab(b, 1)
	s := home.InitialState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := home.Env.StateKey(s)
		s2 := home.Env.DecodeState(key)
		if len(s2) != len(s) {
			b.Fatal("bad decode")
		}
	}
}

func BenchmarkNNForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := nn.MustNew(nn.Config{Inputs: 40, Layers: []nn.LayerSpec{
		{Units: 64, Act: nn.ReLU}, {Units: 64, Act: nn.ReLU}, {Units: 42, Act: nn.Linear},
	}}, rng)
	x := make([]float64, 40)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := net.Forward(x); len(out) != 42 {
			b.Fatal("bad forward")
		}
	}
}

func BenchmarkNNTrainBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := nn.MustNew(nn.Config{Inputs: 40, Layers: []nn.LayerSpec{
		{Units: 64, Act: nn.ReLU}, {Units: 42, Act: nn.Linear},
	}}, rng)
	batch := make([]nn.Sample, 32)
	for i := range batch {
		x := make([]float64, 40)
		y := make([]float64, 42)
		for j := range x {
			x[j] = rng.Float64()
		}
		batch[i] = nn.Sample{X: x, Y: y}
	}
	opt := nn.NewAdam(0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.TrainBatch(batch, nn.Huber, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterScore(b *testing.B) {
	home, days := benchLab(b, 1)
	rng := rand.New(rand.NewSource(1))
	filter, err := anomaly.NewFilter(home.Env, anomaly.Config{}, rng)
	if err != nil {
		b.Fatal(err)
	}
	tr := env.Transition{
		From: days[0].Episode.States[0],
		Act:  env.NoOp(home.Env.K()),
		To:   days[0].Episode.States[1],
		At:   days[0].Episode.Start,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		filter.Score(tr)
	}
}

func BenchmarkSPLObserveDay(b *testing.B) {
	home, days := benchLab(b, 1)
	ep := days[0].Episode
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spl := policy.NewLearner(home.Env, policy.Config{AllowIdle: true})
		spl.Observe(ep)
	}
}

func BenchmarkPolicyTableLookup(b *testing.B) {
	home, days := benchLab(b, 2)
	spl := policy.NewLearner(home.Env, policy.Config{AllowIdle: true})
	spl.ObserveAll(dataset.Episodes(days))
	table := spl.Table()
	key := home.Env.StateKey(home.InitialState())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Safe(key, key+1)
	}
}

func BenchmarkGeneratorDay(b *testing.B) {
	home := smarthome.NewFullHome()
	gen := dataset.NewGenerator(home, dataset.HomeAConfig())
	rng := rand.New(rand.NewSource(1))
	s0 := home.InitialState()
	start := time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gen.Day(start, s0, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttackInject(b *testing.B) {
	home, days := benchLab(b, 1)
	rng := rand.New(rand.NewSource(1))
	corpus := attack.Corpus(home)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := corpus[i%len(corpus)]
		if !v.TransitionBased() {
			continue
		}
		if _, _, _, err := attack.Inject(home.Env, days[0].Episode, v, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Batched-core micro-benchmarks ---------------------------------------
//
// The allocation-free contracts below are load-bearing: the batched kernels
// must stay zero-alloc in steady state, so each benchmark asserts it before
// timing.

func BenchmarkForwardBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := nn.MustNew(nn.Config{Inputs: 40, Layers: []nn.LayerSpec{
		{Units: 64, Act: nn.ReLU}, {Units: 64, Act: nn.ReLU}, {Units: 42, Act: nn.Linear},
	}}, rng)
	xs := make([][]float64, 32)
	for i := range xs {
		xs[i] = make([]float64, 40)
		for j := range xs[i] {
			xs[i][j] = rng.Float64()
		}
	}
	if _, err := net.ForwardBatch(xs); err != nil { // warm the arena
		b.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := net.ForwardBatch(xs); err != nil {
			b.Fatal(err)
		}
	}); allocs != 0 {
		b.Fatalf("ForwardBatch steady state allocates %.1f objects per call, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := net.ForwardBatch(xs)
		if err != nil || len(out) != 32 {
			b.Fatal("bad batch forward")
		}
	}
}

func BenchmarkTrainBatchParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := nn.MustNew(nn.Config{Inputs: 40, Layers: []nn.LayerSpec{
		{Units: 64, Act: nn.ReLU}, {Units: 64, Act: nn.ReLU}, {Units: 42, Act: nn.Linear},
	}}, rng)
	batch := make([]nn.Sample, 64)
	for i := range batch {
		x := make([]float64, 40)
		y := make([]float64, 42)
		for j := range x {
			x[j] = rng.Float64()
		}
		batch[i] = nn.Sample{X: x, Y: y}
	}
	opt := nn.NewAdam(0.001)
	for i := 0; i < 3; i++ { // warm the arena and Adam state
		if _, err := net.TrainBatch(batch, nn.Huber, opt); err != nil {
			b.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(10, func() {
		if _, err := net.TrainBatch(batch, nn.Huber, opt); err != nil {
			b.Fatal(err)
		}
	}); allocs != 0 {
		b.Fatalf("TrainBatch steady state allocates %.1f objects per call, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.TrainBatch(batch, nn.Huber, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplaySampleInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	r := rl.NewReplay(4096)
	for i := 0; i < 4096; i++ {
		r.Add(rl.Experience{T: i})
	}
	dst := make([]rl.Experience, 0, 64)
	dst = r.SampleInto(dst, 64, rng) // warm the index buffer
	if allocs := testing.AllocsPerRun(20, func() {
		dst = r.SampleInto(dst, 64, rng)
	}); allocs != 0 {
		b.Fatalf("SampleInto steady state allocates %.1f objects per call, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = r.SampleInto(dst, 64, rng)
		if len(dst) != 64 {
			b.Fatal("bad sample")
		}
	}
}

// BenchmarkOfficePipeline: the context-independence instantiation — a full
// learn-and-flag cycle on the smart office.
func BenchmarkOfficePipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		office := smartoffice.New()
		rng := rand.New(rand.NewSource(int64(i)))
		eps, err := office.Workdays(time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC), 3,
			smartoffice.DefaultWorkday(), rng)
		if err != nil {
			b.Fatal(err)
		}
		spl := policy.NewLearner(office.Env, policy.Config{AllowIdle: true})
		spl.ObserveAll(eps)
		if spl.Table().Len() == 0 {
			b.Fatal("empty table")
		}
	}
}
