package jarvis_test

import (
	"fmt"
	"math/rand"
	"time"

	"jarvis"
	"jarvis/internal/dataset"
	"jarvis/internal/env"
	"jarvis/internal/reward"
	"jarvis/internal/rl"
	"jarvis/internal/smarthome"
)

// Example runs the full pipeline: learn safe policies from a simulated
// week, train a small constrained optimizer, and audit a benign day.
func Example() {
	home := smarthome.NewFullHome()
	rng := rand.New(rand.NewSource(42))
	gen := dataset.NewGenerator(home, dataset.HomeAConfig())
	days, err := gen.Days(time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC), 3, rng)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	episodes := dataset.Episodes(days)

	sys, err := jarvis.New(home.Env, jarvis.Config{Seed: 42})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sys.Learn(episodes)

	rs, err := reward.New(home.Env, reward.Config{
		Functionalities: smarthome.Functionalities(
			home.Env, home.TempSensor, home.Thermostat, days[0].Context.Prices, 0.6, 0.2, 0.2),
		Preferred: sys.PreferredTimes(episodes),
		Instances: smarthome.InstancesPerDay,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	stats, err := sys.Train(rl.SimConfig{
		Initial: home.InitialState(),
		Reward:  rs,
	}, jarvis.TrainConfig{Agent: rl.AgentConfig{
		Episodes: 2, DecideEvery: 60, ReplayEvery: 16,
	}})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	violations, err := sys.Audit(episodes[:1])
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("episodes trained:", len(stats.EpisodeRewards))
	fmt.Println("training violations:", stats.Violations)
	fmt.Println("benign-day violations:", len(violations))
	// Output:
	// episodes trained: 2
	// training violations: 0
	// benign-day violations: 0
}

// ExampleSystem_Audit flags an engineered unsafe transition.
func ExampleSystem_Audit() {
	home := smarthome.NewFullHome()
	rng := rand.New(rand.NewSource(7))
	gen := dataset.NewGenerator(home, dataset.HomeAConfig())
	days, err := gen.Days(time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC), 2, rng)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sys, err := jarvis.New(home.Env, jarvis.Config{Seed: 7})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sys.Learn(dataset.Episodes(days))

	// Tamper with a benign day: disable the door sensor at 02:00.
	base := days[0].Episode
	actions := make([]env.Action, base.Len())
	for i, a := range base.Actions {
		actions[i] = a.Clone()
	}
	actions[2*60][home.DoorSensor] = 0 // power_off
	tampered, err := env.ReplayActions(home.Env, base.States[0], base.Start, base.I, actions)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	violations, err := sys.Audit([]env.Episode{tampered})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("flagged:", len(violations) > 0)
	// Output:
	// flagged: true
}
