package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"strings"
	"time"

	"jarvis/internal/wire"
)

// flags bundles the flag set so run() can parse test args without
// touching the global FlagSet.
type flags struct {
	fs           *flag.FlagSet
	daemon       *string
	addr         *string
	wire         *string
	n            *int
	conns        *int
	batch        *int
	warmup       *int
	out          *string
	minSpeedup   *float64
	sloP99Us     *float64
	learningDays *int
	episodes     *int
	timeout      *time.Duration
	startTimeout *time.Duration
}

func newFlagSet() *flags {
	f := &flags{fs: flag.NewFlagSet("jarvisload", flag.ContinueOnError)}
	f.daemon = f.fs.String("jarvisd", "", "path to a jarvisd binary to spawn for each scenario")
	f.addr = f.fs.String("addr", "", "bench an already-running daemon at this address instead of spawning (comma-separated primary,standby list fails over in order)")
	f.wire = f.fs.String("wire", "binary", "codec for -addr mode: binary | json")
	f.n = f.fs.Int("n", 20000, "timed recommend requests per scenario")
	f.conns = f.fs.Int("conns", 4, "concurrent persistent connections")
	f.batch = f.fs.Int("batch", 16, "binary-codec pipeline depth: recommends scored per round trip (JSON has no batching; it always runs lockstep)")
	f.warmup = f.fs.Int("warmup", 200, "untimed warmup requests per scenario")
	f.out = f.fs.String("out", "BENCH_serve.json", "report path")
	f.minSpeedup = f.fs.Float64("min-speedup", 0, "fail unless binary+compiled beats json+dnn by this throughput multiple (0 = report only)")
	f.sloP99Us = f.fs.Float64("slo-p99-us", 0, "SLO target: stamp slo_pass per scenario (p99 <= this many µs) into the report and fail when any scenario misses (0 = disabled)")
	f.learningDays = f.fs.Int("learning-days", 2, "spawned daemon learning-phase length")
	f.episodes = f.fs.Int("episodes", 2, "spawned daemon training episodes")
	f.timeout = f.fs.Duration("timeout", 10*time.Second, "per-request deadline")
	f.startTimeout = f.fs.Duration("start-timeout", 5*time.Minute, "how long a spawned daemon may take to start serving")
	return f
}

// splitAddrs parses a comma-separated address list, dropping empty
// entries so trailing commas are harmless.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// client issues recommend requests over a persistent connection; the two
// implementations are the codecs under test. RecommendBatch(n) completes
// n recommendations before returning — the binary codec pipelines them
// into one round trip so the daemon can batch-score, while JSON (which
// has no framing for it) runs them lockstep.
type client interface {
	RecommendBatch(n int) error
	Close() error
}

// dialClient connects to the first reachable address. With several
// addresses (primary,standby failover) each is tried in order, twice
// through the list — a kill-the-primary bench window only needs the
// standby to finish promoting by the second pass.
func dialClient(addrs []string, wireMode string, timeout time.Duration) (client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("no addresses to dial")
	}
	var lastErr error
	for pass := 0; pass < 2; pass++ {
		for _, addr := range addrs {
			c, err := dialOne(addr, wireMode, timeout)
			if err == nil {
				return c, nil
			}
			lastErr = err
		}
	}
	if len(addrs) > 1 {
		return nil, fmt.Errorf("%w (exhausted %s)", lastErr, strings.Join(addrs, ", "))
	}
	return nil, lastErr
}

func dialOne(addr, wireMode string, timeout time.Duration) (client, error) {
	switch wireMode {
	case "binary":
		c, err := wire.Dial(addr, timeout)
		if err != nil {
			return nil, err
		}
		return &binClient{c: c}, nil
	case "json":
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return &jsonClient{
			conn:    conn,
			enc:     json.NewEncoder(conn),
			dec:     json.NewDecoder(bufio.NewReader(conn)),
			timeout: timeout,
		}, nil
	}
	return nil, fmt.Errorf("unknown -wire %q (want binary or json)", wireMode)
}

type binClient struct {
	c *wire.Client
}

func (b *binClient) RecommendBatch(n int) error {
	resp, err := b.c.DoBatch(wire.Request{Op: wire.OpRecommend}, n)
	if err != nil {
		return err
	}
	if !resp.OK() {
		return fmt.Errorf("daemon: %s", resp.Err)
	}
	return nil
}

func (b *binClient) Close() error { return b.c.Close() }

type jsonClient struct {
	conn    net.Conn
	enc     *json.Encoder
	dec     *json.Decoder
	timeout time.Duration
}

// jsonRequest and jsonResponse mirror jarvisd's JSON protocol; only the
// fields the bench touches are declared.
type jsonRequest struct {
	Op string `json:"op"`
}

type jsonResponse struct {
	OK    bool    `json:"ok"`
	Error string  `json:"error,omitempty"`
	Q     float64 `json:"q,omitempty"`
}

func (j *jsonClient) RecommendBatch(n int) error {
	if err := j.conn.SetDeadline(time.Now().Add(j.timeout)); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := j.enc.Encode(jsonRequest{Op: "recommend"}); err != nil {
			return err
		}
		var resp jsonResponse
		if err := j.dec.Decode(&resp); err != nil {
			return err
		}
		if !resp.OK {
			return fmt.Errorf("daemon: %s", resp.Error)
		}
	}
	return nil
}

func (j *jsonClient) Close() error { return j.conn.Close() }
