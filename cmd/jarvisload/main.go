// Command jarvisload benchmarks the jarvisd serving path end to end and
// writes BENCH_serve.json. It spawns two daemon configurations — the
// legacy shape (JSON lines, DQN backend, compiled tables off) and the
// fast shape (binary wire protocol, tabular backend, compiled policy
// tables) — drives each with concurrent persistent-connection clients
// issuing recommend requests, and reports p50/p99 latency plus
// recommendations per second for both:
//
//	jarvisload -jarvisd ./bin/jarvisd -n 20000 -conns 4
//	jarvisload -addr 127.0.0.1:7463 -wire binary   # bench a running daemon
//
// With -min-speedup the process exits non-zero unless the fast shape
// clears that throughput multiple over the legacy shape — the CI gate
// for the serving-path optimization work.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"jarvis/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jarvisload:", err)
		os.Exit(1)
	}
}

// scenario is one daemon shape under test.
type scenario struct {
	Name string
	Wire string // "json" | "binary"
	Args []string
}

// result is one row of BENCH_serve.json.
type result struct {
	Scenario string `json:"scenario"`
	Wire     string `json:"wire"`
	Requests int    `json:"requests"`
	Conns    int    `json:"conns"`
	// Batch is the pipeline depth: recommendations completed per round
	// trip. Latency percentiles are per round trip, so at Batch > 1 each
	// sample covers a whole scored batch.
	Batch      int     `json:"batch"`
	P50Us      float64 `json:"p50_us"`
	P99Us      float64 `json:"p99_us"`
	RecsPerSec float64 `json:"recs_per_sec"`
	ElapsedMs  float64 `json:"elapsed_ms"`
	// SLOP99Us/SLOPass record the -slo-p99-us gate: present only when a
	// target was given, so the serve-bench trajectory doubles as an SLO
	// regression gate.
	SLOP99Us float64 `json:"slo_p99_us,omitempty"`
	SLOPass  *bool   `json:"slo_pass,omitempty"`
}

// report is the BENCH_serve.json envelope, shaped like BENCH_core.json.
// GeneratedAt and Revision order the serve-bench trajectory and tie each
// artifact to the source that produced it.
type report struct {
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	GeneratedAt string   `json:"generated_at"`
	Revision    string   `json:"revision,omitempty"`
	Results     []result `json:"results"`
	// Speedup is fast-shape throughput over legacy-shape throughput,
	// present only when both scenarios ran.
	Speedup float64 `json:"speedup,omitempty"`
}

func run(args []string, out *os.File) error {
	fs := newFlagSet()
	if err := fs.fs.Parse(args); err != nil {
		return err
	}
	cfg := fs

	rep := report{
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Revision:    version.Revision(),
	}

	if *cfg.addr != "" {
		// Bench a daemon someone else is running; no spawning.
		r, err := benchAddr(splitAddrs(*cfg.addr), *cfg.wire, *cfg.n, *cfg.conns, *cfg.batch, *cfg.warmup, *cfg.timeout)
		if err != nil {
			return err
		}
		r.Scenario = "external"
		rep.Results = append(rep.Results, r)
		return writeReport(&rep, *cfg.out, out, 0, *cfg.sloP99Us)
	}

	if *cfg.daemon == "" {
		return fmt.Errorf("need -jarvisd <binary> (or -addr to bench a running daemon)")
	}
	common := []string{
		"-learning-days", fmt.Sprint(*cfg.learningDays),
		"-episodes", fmt.Sprint(*cfg.episodes),
		"-debug-addr", "", // the bench drives the TCP protocol only
	}
	scenarios := []scenario{
		{
			Name: "json+dnn",
			Wire: "json",
			Args: append([]string{"-dnn", "-compiled=false"}, common...),
		},
		{
			Name: "binary+compiled",
			Wire: "binary",
			Args: common,
		},
	}
	for _, sc := range scenarios {
		fmt.Fprintf(out, "jarvisload: starting %s daemon...\n", sc.Name)
		addr, stop, err := spawnDaemon(*cfg.daemon, sc.Args, *cfg.startTimeout)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		batch := 1
		if sc.Wire == "binary" {
			batch = *cfg.batch
		}
		r, err := benchAddr([]string{addr}, sc.Wire, *cfg.n, *cfg.conns, batch, *cfg.warmup, *cfg.timeout)
		stop()
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		r.Scenario = sc.Name
		rep.Results = append(rep.Results, r)
		fmt.Fprintf(out, "%-16s %8.0f recs/sec  p50 %7.1fµs  p99 %7.1fµs\n",
			sc.Name, r.RecsPerSec, r.P50Us, r.P99Us)
	}
	return writeReport(&rep, *cfg.out, out, *cfg.minSpeedup, *cfg.sloP99Us)
}

// writeReport computes the speedup, stamps the SLO verdicts, persists the
// envelope, and enforces -min-speedup / -slo-p99-us. The file is written
// before any gate fires so a failing run still leaves the evidence.
func writeReport(rep *report, path string, out *os.File, minSpeedup, sloP99Us float64) error {
	if len(rep.Results) == 2 && rep.Results[0].RecsPerSec > 0 {
		rep.Speedup = rep.Results[1].RecsPerSec / rep.Results[0].RecsPerSec
		fmt.Fprintf(out, "speedup: %.1fx\n", rep.Speedup)
	}
	sloMisses := 0
	if sloP99Us > 0 {
		for i := range rep.Results {
			r := &rep.Results[i]
			pass := r.P99Us <= sloP99Us
			r.SLOP99Us = sloP99Us
			r.SLOPass = &pass
			if !pass {
				sloMisses++
				fmt.Fprintf(out, "%s: p99 %.1fµs exceeds SLO target %.1fµs\n", r.Scenario, r.P99Us, sloP99Us)
			}
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	if minSpeedup > 0 && rep.Speedup < minSpeedup {
		return fmt.Errorf("speedup %.2fx below required %.2fx", rep.Speedup, minSpeedup)
	}
	if sloMisses > 0 {
		return fmt.Errorf("%d scenario(s) missed the p99 SLO target of %.1fµs", sloMisses, sloP99Us)
	}
	return nil
}

// spawnDaemon launches a jarvisd binary on an ephemeral port and blocks
// until its "listening on" banner names the address. stop terminates the
// daemon and reaps it.
func spawnDaemon(bin string, extra []string, startTimeout time.Duration) (addr string, stop func(), err error) {
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			var a string
			if n, _ := fmt.Sscanf(line, "jarvisd: listening on %s", &a); n == 1 {
				select {
				case addrCh <- a:
				default:
				}
			}
		}
	}()
	stop = func() {
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	}
	select {
	case addr = <-addrCh:
		return addr, stop, nil
	case <-time.After(startTimeout):
		stop()
		return "", nil, fmt.Errorf("daemon did not report a listen address within %s (training still running? raise -start-timeout)", startTimeout)
	}
}

// benchAddr drives addr with conns persistent clients until n recommend
// requests have completed, batch per round trip, collecting per-round-trip
// latencies.
func benchAddr(addrs []string, wireMode string, n, conns, batch, warmup int, timeout time.Duration) (result, error) {
	if conns < 1 {
		conns = 1
	}
	if batch < 1 {
		batch = 1
	}
	clients := make([]client, conns)
	for i := range clients {
		c, err := dialClient(addrs, wireMode, timeout)
		if err != nil {
			for _, p := range clients[:i] {
				p.Close()
			}
			return result{}, err
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// Warmup primes connection state, the daemon's scratch buffers, and
	// the compiled-table hit path before the timed window opens.
	for i := 0; i < warmup; i++ {
		if err := clients[i%conns].RecommendBatch(batch); err != nil {
			return result{}, fmt.Errorf("warmup: %w", err)
		}
	}

	var (
		remaining = int64(n)
		wg        sync.WaitGroup
		mu        sync.Mutex
		lats      = make([]time.Duration, 0, n)
		firstErr  error
	)
	start := time.Now()
	for _, c := range clients {
		wg.Add(1)
		go func(c client) {
			defer wg.Done()
			local := make([]time.Duration, 0, n/(conns*batch)+1)
			for atomic.AddInt64(&remaining, -int64(batch)) >= 0 {
				t0 := time.Now()
				err := c.RecommendBatch(batch)
				local = append(local, time.Since(t0))
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return result{}, firstErr
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	reqs := len(lats) * batch
	return result{
		Wire:       wireMode,
		Requests:   reqs,
		Conns:      conns,
		Batch:      batch,
		P50Us:      float64(percentile(lats, 50)) / 1e3,
		P99Us:      float64(percentile(lats, 99)) / 1e3,
		RecsPerSec: float64(reqs) / elapsed.Seconds(),
		ElapsedMs:  float64(elapsed.Nanoseconds()) / 1e6,
	}, nil
}

// percentile reads the p-th percentile from sorted latencies using the
// nearest-rank method.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}
