package main

import (
	"bufio"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"jarvis/internal/wire"
)

func TestPercentileNearestRank(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Microsecond
	}
	cases := []struct {
		p    int
		want time.Duration
	}{
		{50, 50 * time.Microsecond},
		{99, 99 * time.Microsecond},
		{100, 100 * time.Microsecond},
		{1, 1 * time.Microsecond},
	}
	for _, c := range cases {
		if got := percentile(lats, c.p); got != c.want {
			t.Errorf("percentile(%d) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
	if got := percentile(lats[:1], 99); got != time.Microsecond {
		t.Errorf("percentile(single, 99) = %v", got)
	}
}

// fakeRecommendDaemon answers recommend over both codecs, like jarvisd.
func fakeRecommendDaemon(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				br := bufio.NewReader(conn)
				first, err := br.Peek(1)
				if err != nil {
					return
				}
				if first[0] == wire.Magic {
					hello := make([]byte, 2)
					if _, err := br.Read(hello); err != nil {
						return
					}
					if _, err := conn.Write(wire.AppendAck(nil)); err != nil {
						return
					}
					r := wire.NewReader(br)
					var out []byte
					for {
						if _, err := r.ReadFrame(); err != nil {
							return
						}
						out = wire.AppendResponse(out[:0], &wire.Response{Flags: wire.FlagOK, Q: 1})
						if _, err := conn.Write(out); err != nil {
							return
						}
					}
				}
				dec := json.NewDecoder(br)
				enc := json.NewEncoder(conn)
				for {
					var req jsonRequest
					if err := dec.Decode(&req); err != nil {
						return
					}
					if err := enc.Encode(jsonResponse{OK: true, Q: 1}); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestBenchAddrBothCodecs runs the measurement loop against a fake daemon
// over each codec and sanity-checks the row.
func TestBenchAddrBothCodecs(t *testing.T) {
	addr := fakeRecommendDaemon(t)
	for _, mode := range []string{"binary", "json"} {
		r, err := benchAddr([]string{addr}, mode, 100, 2, 4, 10, 5*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if r.Requests != 100 || r.RecsPerSec <= 0 || r.P99Us < r.P50Us {
			t.Errorf("%s row implausible: %+v", mode, r)
		}
	}
}

// TestExternalAddrModeWritesReport drives run() end to end in -addr mode
// and checks the BENCH_serve.json envelope.
func TestExternalAddrModeWritesReport(t *testing.T) {
	addr := fakeRecommendDaemon(t)
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	err := run([]string{"-addr", addr, "-n", "50", "-conns", "2", "-batch", "1", "-warmup", "5", "-out", out}, os.Stdout)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report missing: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bad report: %v", err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Requests != 50 || rep.Results[0].Wire != "binary" {
		t.Fatalf("report: %+v", rep)
	}
	// The trajectory stamp: generated_at must be a parseable RFC3339
	// instant (revision is empty in test builds, which carry no VCS info).
	if _, err := time.Parse(time.RFC3339, rep.GeneratedAt); err != nil {
		t.Errorf("generated_at %q does not parse: %v", rep.GeneratedAt, err)
	}
}

// TestSLOP99Gate drives -addr mode with -slo-p99-us at both extremes: a
// generous target stamps slo_pass=true, an impossible one stamps false
// AND fails the run — but only after the report is on disk.
func TestSLOP99Gate(t *testing.T) {
	addr := fakeRecommendDaemon(t)
	readReport := func(path string) report {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("report missing: %v", err)
		}
		var rep report
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("bad report: %v", err)
		}
		return rep
	}
	base := []string{"-addr", addr, "-n", "50", "-conns", "2", "-batch", "1", "-warmup", "5"}

	pass := filepath.Join(t.TempDir(), "pass.json")
	if err := run(append(base, "-slo-p99-us", "1e9", "-out", pass), os.Stdout); err != nil {
		t.Fatalf("generous SLO failed the run: %v", err)
	}
	rep := readReport(pass)
	if r := rep.Results[0]; r.SLOPass == nil || !*r.SLOPass || r.SLOP99Us != 1e9 {
		t.Fatalf("pass row: %+v", rep.Results[0])
	}

	fail := filepath.Join(t.TempDir(), "fail.json")
	if err := run(append(base, "-slo-p99-us", "0.0001", "-out", fail), os.Stdout); err == nil {
		t.Fatal("impossible SLO target did not fail the run")
	}
	rep = readReport(fail) // the gate must not suppress the report file
	if r := rep.Results[0]; r.SLOPass == nil || *r.SLOPass {
		t.Fatalf("fail row: %+v", rep.Results[0])
	}

	plain := filepath.Join(t.TempDir(), "plain.json")
	if err := run(append(base, "-out", plain), os.Stdout); err != nil {
		t.Fatal(err)
	}
	if r := readReport(plain).Results[0]; r.SLOPass != nil || r.SLOP99Us != 0 {
		t.Fatalf("slo fields stamped without a target: %+v", r)
	}
}

func TestRunRejectsMissingDaemon(t *testing.T) {
	if err := run(nil, os.Stdout); err == nil {
		t.Error("no -jarvisd and no -addr should error")
	}
}
