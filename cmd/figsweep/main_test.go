package main

import "testing"

func TestRunArgValidation(t *testing.T) {
	if err := run([]string{"nope"}); err == nil {
		t.Error("unknown figure should error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should error")
	}
}
