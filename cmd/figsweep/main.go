// Command figsweep regenerates Figures 6–8 at a configurable sweep size —
// the full 9-weight grid with a tunable day count, for machines where the
// 30-day paper sweep is impractical.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"jarvis/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figsweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figsweep", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	days := fs.Int("days", 8, "evaluation days per weight")
	episodes := fs.Int("episodes", 150, "training episodes per cell")
	restarts := fs.Int("restarts", 2, "training restarts per cell")
	if err := fs.Parse(args); err != nil {
		return err
	}
	metrics := map[string]experiment.Metric{
		"fig6": experiment.MetricEnergy,
		"fig7": experiment.MetricCost,
		"fig8": experiment.MetricComfort,
	}
	names := fs.Args()
	if len(names) == 0 {
		names = []string{"fig6", "fig7", "fig8"}
	}
	for _, name := range names {
		m, ok := metrics[name]
		if !ok {
			return fmt.Errorf("unknown figure %q", name)
		}
		start := time.Now()
		res, err := experiment.Functionality(experiment.FunctionalityConfig{
			Seed:     *seed,
			Metric:   m,
			Weights:  []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
			Days:     *days,
			Episodes: *episodes,
			Restarts: *restarts,
		})
		if err != nil {
			return err
		}
		fmt.Println(res)
		fmt.Printf("[%s: %d days × 9 weights × %d restarts in %v]\n\n",
			name, *days, *restarts, time.Since(start).Round(time.Second))
	}
	return nil
}
