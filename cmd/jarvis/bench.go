package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"jarvis/internal/experiment"
	"jarvis/internal/nn"
	"jarvis/internal/rl"
	"jarvis/internal/telemetry"
	"jarvis/internal/trace"
	"jarvis/internal/version"
)

// benchResult is one row of BENCH_core.json.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MsTotal     float64 `json:"ms_total"`
}

// benchReport is the BENCH_core.json envelope. GeneratedAt and Revision
// make a directory of bench artifacts orderable: the trajectory can be
// sorted by wall clock and each point tied back to the exact source that
// produced it. Telemetry carries the process-wide metrics snapshot taken
// after the benchmarks ran — the kernel counters (rl.update.latency,
// rl.train.steps, experiment.*) that the instrumented packages
// accumulated while being measured, so a bench artifact records not just
// ns/op but how much work each kernel did.
type benchReport struct {
	GoVersion   string              `json:"go_version"`
	GOMAXPROCS  int                 `json:"gomaxprocs"`
	GeneratedAt string              `json:"generated_at"`
	Revision    string              `json:"revision,omitempty"`
	Results     []benchResult       `json:"results"`
	Telemetry   *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// coreBenchmarks measures the batched compute core: the nn kernels, the
// replay sampler, the batched DQN update, and the end-to-end Table III
// experiment the perf work targets.
func coreBenchmarks() []struct {
	name string
	fn   func(b *testing.B)
} {
	return []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"nn/ForwardBatch32", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			net := nn.MustNew(nn.Config{Inputs: 40, Layers: []nn.LayerSpec{
				{Units: 64, Act: nn.ReLU}, {Units: 64, Act: nn.ReLU}, {Units: 42, Act: nn.Linear},
			}}, rng)
			xs := make([][]float64, 32)
			for i := range xs {
				xs[i] = make([]float64, 40)
				for j := range xs[i] {
					xs[i][j] = rng.Float64()
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := net.ForwardBatch(xs); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"nn/TrainBatch64", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			net := nn.MustNew(nn.Config{Inputs: 40, Layers: []nn.LayerSpec{
				{Units: 64, Act: nn.ReLU}, {Units: 64, Act: nn.ReLU}, {Units: 42, Act: nn.Linear},
			}}, rng)
			batch := make([]nn.Sample, 64)
			for i := range batch {
				x := make([]float64, 40)
				y := make([]float64, 42)
				for j := range x {
					x[j] = rng.Float64()
				}
				batch[i] = nn.Sample{X: x, Y: y}
			}
			opt := nn.NewAdam(0.001)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := net.TrainBatch(batch, nn.Huber, opt); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"rl/ReplaySampleInto64", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			r := rl.NewReplay(4096)
			for i := 0; i < 4096; i++ {
				r.Add(rl.Experience{T: i})
			}
			dst := make([]rl.Experience, 0, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = r.SampleInto(dst, 64, rng)
			}
		}},
		{"trace/SpanDisabled", func(b *testing.B) {
			// The cost every untraced request pays: a sampler check that
			// returns nil, and nil-safe method calls on the way down.
			tr := trace.New(8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := tr.Start("bench.op")
				child := sp.Child("bench.child")
				child.AnnotateInt("i", int64(i))
				child.End()
				sp.End()
			}
		}},
		{"trace/SpanTreeSampled", func(b *testing.B) {
			// The cost a sampled request pays: a three-span tree with one
			// annotation, completed into the ring.
			tr := trace.New(8)
			tr.SetSampleEvery(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := tr.Start("bench.op")
				child := sp.Child("bench.select")
				child.AnnotateInt("i", int64(i))
				child.End()
				w := sp.Child("bench.append")
				w.End()
				sp.End()
			}
		}},
		{"experiment/Table3Quick", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := experiment.Table3(experiment.Table3Config{Seed: int64(i), LearningDays: 5})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 8 {
					b.Fatal("bad table")
				}
			}
		}},
		{"experiment/Table2Quick", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := experiment.Table2(experiment.Table2Config{Seed: int64(i), LearningDays: 3})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != 6 {
					b.Fatal("bad table")
				}
			}
		}},
	}
}

// runBench measures the compute core with testing.Benchmark and writes
// BENCH_core.json next to the working directory.
func runBench(path string, out *os.File) error {
	report := benchReport{
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Revision:    version.Revision(),
	}
	for _, bench := range coreBenchmarks() {
		r := testing.Benchmark(bench.fn)
		row := benchResult{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			MsTotal:     float64(r.T.Nanoseconds()) / 1e6,
		}
		report.Results = append(report.Results, row)
		fmt.Fprintf(out, "%-28s %12d ns/op %10d B/op %8d allocs/op\n",
			row.Name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp)
	}
	snap := telemetry.Default.Snapshot()
	snap.Events = nil // event ring is runtime context, not a bench artifact
	report.Telemetry = &snap
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}
