// Command jarvis runs the reproduction experiments: every table and figure
// of the paper's evaluation, at paper scale or a quick reduced scale.
//
// Usage:
//
//	jarvis [-seed N] [-quick] <experiment>
//
// where <experiment> is one of table1, table2, table3, security, roc,
// fig6, fig7, fig8, fig9, ablation, chaos, or all; or one of the special
// subcommands: bench measures the batched compute core and writes
// BENCH_core.json (see -benchout), trace runs one fully traced
// decision episode and writes a Chrome trace_event document (see
// -traceout) for chrome://tracing or Perfetto, and whatif replays a
// recorded jarvisd WAL offline — verifying the daemon reproduces its own
// decision log bit-for-bit, or counterfactually substituting another
// policy (see `jarvis whatif -h` and DESIGN.md §12).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"jarvis/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jarvis:", err)
		os.Exit(1)
	}
}

type stringer interface{ String() string }

func run(args []string, out *os.File) error {
	// whatif has its own flag surface (WAL paths, fork point, policy
	// substitution), so it is dispatched before the experiment flags parse.
	if len(args) > 0 && args[0] == "whatif" {
		return runWhatIf(args[1:], out)
	}
	fs := flag.NewFlagSet("jarvis", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed (all experiments are deterministic per seed)")
	quick := fs.Bool("quick", false, "reduced scale (seconds instead of minutes)")
	homeB := fs.Bool("homeb", false, "use the Smart*-calibrated home-B profile where applicable")
	benchOut := fs.String("benchout", "BENCH_core.json", "output path for the bench subcommand")
	traceOut := fs.String("traceout", "trace.json", "output path for the trace subcommand (Chrome trace_event JSON)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected one experiment: table1|table2|table3|security|roc|fig6|fig7|fig8|fig9|ablation|chaos|all|bench|trace|whatif")
	}
	name := fs.Arg(0)
	if name == "bench" {
		return runBench(*benchOut, out)
	}
	if name == "trace" {
		return runTrace(*traceOut, *seed, *quick, out)
	}
	if name == "all" {
		for _, n := range []string{"table1", "table2", "table3", "security", "roc", "fig6", "fig7", "fig8", "fig9", "ablation", "chaos"} {
			if err := runOne(n, *seed, *quick, *homeB, out); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(name, *seed, *quick, *homeB, out)
}

func runOne(name string, seed int64, quick, homeB bool, out *os.File) error {
	start := time.Now()
	res, err := dispatch(name, seed, quick, homeB)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, res.String())
	fmt.Fprintf(out, "[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

func dispatch(name string, seed int64, quick, homeB bool) (stringer, error) {
	switch name {
	case "table1":
		return experiment.Table1(), nil
	case "table2":
		cfg := experiment.Table2Config{Seed: seed}
		if quick {
			cfg.LearningDays = 3
		}
		return experiment.Table2(cfg)
	case "table3":
		cfg := experiment.Table3Config{Seed: seed}
		if quick {
			cfg.LearningDays = 5
		}
		return experiment.Table3(cfg)
	case "security":
		cfg := experiment.SecurityConfig{Seed: seed, HomeB: homeB} // 214 × 100 = 21,400
		if quick {
			cfg.EpisodesPerViolation = 5
			cfg.BaseDays = 2
			cfg.LearningDays = 4
		}
		return experiment.Security(cfg)
	case "roc":
		cfg := experiment.DefaultROCConfig(seed)
		if quick {
			cfg.TrainAnomalies, cfg.TrainNormals = 2000, 2000
			cfg.EvalEpisodes = 500
			cfg.LearningDays = 4
			cfg.FilterEpochs = 8
		}
		return experiment.ROC(cfg)
	case "fig6", "fig7", "fig8":
		metric := map[string]experiment.Metric{
			"fig6": experiment.MetricEnergy,
			"fig7": experiment.MetricCost,
			"fig8": experiment.MetricComfort,
		}[name]
		cfg := experiment.DefaultFunctionalityConfig(seed, metric)
		cfg.HomeB = homeB
		if quick {
			cfg.Weights = []float64{0.1, 0.5, 0.9}
			cfg.Days = 2
			cfg.LearningDays = 4
			cfg.Restarts = 2
		}
		return experiment.Functionality(cfg)
	case "ablation":
		cfg := experiment.AblationConfig{Seed: seed}
		if quick {
			cfg.LearningDays = 3
			cfg.Anomalies = 150
			cfg.Episodes = 8
		}
		return experiment.Ablation(cfg)
	case "fig9":
		cfg := experiment.BenefitSpaceConfig{Seed: seed, Episodes: 200}
		if quick {
			cfg.Episodes = 60
			cfg.LearningDays = 4
		}
		return experiment.BenefitSpace(cfg)
	case "chaos":
		cfg := experiment.ChaosConfig{Seed: seed}
		if quick {
			cfg.LearningDays = 3
			cfg.Episodes = 8
		}
		return experiment.Chaos(cfg)
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}
