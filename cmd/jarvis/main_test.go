package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDispatchQuickExperiments(t *testing.T) {
	// The heavy figure experiments are covered in internal/experiment;
	// here we exercise the CLI plumbing on the fast ones.
	for _, name := range []string{"table1", "table2", "table3"} {
		t.Run(name, func(t *testing.T) {
			res, err := dispatch(name, 1, true, false)
			if err != nil {
				t.Fatalf("dispatch(%s): %v", name, err)
			}
			if res.String() == "" {
				t.Error("empty result")
			}
		})
	}
}

func TestDispatchUnknown(t *testing.T) {
	if _, err := dispatch("nope", 1, true, false); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown experiment should error, got %v", err)
	}
}

func TestRunArgValidation(t *testing.T) {
	if err := run([]string{}, nil); err == nil {
		t.Error("no experiment should error")
	}
	if err := run([]string{"-bogus"}, nil); err == nil {
		t.Error("bad flag should error")
	}
}

// TestTraceMode: the trace subcommand writes a loadable Chrome trace_event
// document covering the decision pipeline.
func TestTraceMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var devnull *os.File
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	devnull = f
	if err := runTrace(path, 1, true, devnull); err != nil {
		t.Fatalf("runTrace: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace.json is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			seen[ev.Name] = true
		}
	}
	for _, want := range []string{"jarvis.decide", "rl.select", "policy.audit", "anomaly.score"} {
		if !seen[want] {
			t.Errorf("trace.json missing %q spans", want)
		}
	}
}
