package main

import (
	"strings"
	"testing"
)

func TestDispatchQuickExperiments(t *testing.T) {
	// The heavy figure experiments are covered in internal/experiment;
	// here we exercise the CLI plumbing on the fast ones.
	for _, name := range []string{"table1", "table2", "table3"} {
		t.Run(name, func(t *testing.T) {
			res, err := dispatch(name, 1, true, false)
			if err != nil {
				t.Fatalf("dispatch(%s): %v", name, err)
			}
			if res.String() == "" {
				t.Error("empty result")
			}
		})
	}
}

func TestDispatchUnknown(t *testing.T) {
	if _, err := dispatch("nope", 1, true, false); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown experiment should error, got %v", err)
	}
}

func TestRunArgValidation(t *testing.T) {
	if err := run([]string{}, nil); err == nil {
		t.Error("no experiment should error")
	}
	if err := run([]string{"-bogus"}, nil); err == nil {
		t.Error("bad flag should error")
	}
}
