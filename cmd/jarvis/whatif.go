package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"jarvis/internal/replay"
)

// runWhatIf drives the offline replay engine (internal/replay) from the
// command line. With no substituted policy it runs verify mode: re-execute
// the recorded WAL under the run's own configuration and assert the
// regenerated decision stream is bit-identical to the recorded decision
// log. With -policy and/or -table it runs what-if mode: replay the same
// stream twice — as recorded and with the substitution applied from -at —
// and report how the decisions, rewards, and safety outcomes differ.
func runWhatIf(args []string, out *os.File) error {
	fs := flag.NewFlagSet("jarvis whatif", flag.ContinueOnError)
	walDir := fs.String("wal", "", "recorded WAL directory (required)")
	decisions := fs.String("decisions", "", "recorded decision log to verify against (verify mode; read across rotated files)")
	ckpt := fs.String("checkpoint", "", "checkpoint base path to seed the replay from, matching the recorded daemon's -checkpoint (empty = the run trained fresh)")
	ckptRetain := fs.Int("checkpoint-retain", 4, "checkpoint generations kept on disk")
	at := fs.Int("at", 0, "event sequence number to apply the substitution at (0 = from the beginning)")
	policy := fs.String("policy", "", "substitute Q function: a checkpoint generation file or raw SaveQ bytes (selects what-if mode)")
	table := fs.String("table", "", "substitute P_safe table: a checkpoint generation file or raw table JSON (selects what-if mode)")
	outPath := fs.String("out", "", "also write the full JSON report to this file")
	allowTail := fs.Bool("allow-truncated-tail", false, "verify: tolerate a decision log whose buffered tail was lost to a crash")
	seed := fs.Int64("seed", 1, "recorded run's seed")
	days := fs.Int("learning-days", 7, "recorded run's learning-phase length")
	episodes := fs.Int("episodes", 60, "recorded run's optimizer training episodes")
	onlineEvery := fs.Int("online-train-every", 4, "recorded run's online learn cadence")
	anomalyFilter := fs.Bool("anomaly-filter", false, "recorded run trained the benign-anomaly ANN")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *walDir == "" {
		fs.Usage()
		return fmt.Errorf("whatif: -wal is required")
	}
	cfg := replay.Config{
		Seed:             *seed,
		LearningDays:     *days,
		Episodes:         *episodes,
		OnlineTrainEvery: *onlineEvery,
		AnomalyFilter:    *anomalyFilter,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "jarvis: "+format+"\n", a...)
		},
	}
	src := replay.Source{WALDir: *walDir, CheckpointPath: *ckpt, CheckpointRetain: *ckptRetain}

	if *policy == "" && *table == "" {
		if *decisions == "" {
			return fmt.Errorf("whatif: verify mode needs -decisions (or pass -policy/-table for a counterfactual)")
		}
		rep, err := replay.Verify(replay.VerifyOptions{
			Config: cfg, Source: src,
			DecisionLog:        *decisions,
			AllowTruncatedTail: *allowTail,
		})
		if err != nil {
			return err
		}
		if err := writeReport(*outPath, rep); err != nil {
			return err
		}
		st := rep.Replayed
		fmt.Fprintf(out, "verify: replayed %d events, %d transitions, %d recommendations (%d learn steps, %d violations)\n",
			st.Events, st.Transitions, st.Recommends, st.LearnSteps, st.Violations)
		if rep.Restored {
			fmt.Fprintf(out, "seeded from checkpoint generation %d\n", rep.CheckpointGen)
		}
		if rep.TailLoss > 0 {
			fmt.Fprintf(out, "recorded log is %d decision(s) short of the replay (buffered tail lost to a crash)\n", rep.TailLoss)
		}
		if rep.Match {
			fmt.Fprintf(out, "decision streams MATCH over %d compared decision(s); q fingerprint %.12s\n",
				rep.Compared, rep.QFingerprint)
			return nil
		}
		d := rep.Divergence
		fmt.Fprintf(out, "DIVERGENCE at index %d (seq %d, kind %s, minute %d): %s\n",
			d.Index, d.Seq, d.Kind, d.Minute, d.Reason)
		fmt.Fprintf(out, "  recorded: action=%q q=%g verdict=%q\n", d.RecordedAction, d.RecordedQ, d.RecordedVerdict)
		fmt.Fprintf(out, "  replayed: action=%q q=%g verdict=%q\n", d.ReplayedAction, d.ReplayedQ, d.ReplayedVerdict)
		return fmt.Errorf("whatif: replay diverged from the recorded decision log")
	}

	var q, tb []byte
	if *policy != "" {
		b, err := os.ReadFile(*policy)
		if err != nil {
			return fmt.Errorf("whatif: %w", err)
		}
		q = replay.QFromPolicyFile(b)
	}
	if *table != "" {
		b, err := os.ReadFile(*table)
		if err != nil {
			return fmt.Errorf("whatif: %w", err)
		}
		tb = replay.TableFromPolicyFile(b)
	}
	rep, err := replay.WhatIf(replay.WhatIfOptions{
		Config: cfg, Source: src, At: *at, PolicyQ: q, Table: tb,
	})
	if err != nil {
		return err
	}
	if err := writeReport(*outPath, rep); err != nil {
		return err
	}
	fmt.Fprintf(out, "what-if from event %d: compared %d decision(s)\n", rep.At, rep.Compared)
	fmt.Fprintf(out, "  action divergence: %d/%d (rate %.3f)", rep.ActionDivergences, rep.Compared, rep.ActionDivergenceRate)
	if rep.FirstDivergenceSeq >= 0 {
		fmt.Fprintf(out, ", first at %s seq %d\n", rep.Divergence.Kind, rep.FirstDivergenceSeq)
	} else {
		fmt.Fprintf(out, ", streams agree everywhere\n")
	}
	fmt.Fprintf(out, "  reward delta (variant - baseline): %+.4f\n", rep.RewardDelta)
	fmt.Fprintf(out, "  safety-violation delta: %+d\n", rep.ViolationDelta)
	fmt.Fprintf(out, "  baseline q %.12s, variant q %.12s\n", rep.BaselineQ, rep.VariantQ)
	return nil
}

// writeReport marshals the full report to path (no-op when path is empty).
func writeReport(path string, rep any) error {
	if path == "" {
		return nil
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
