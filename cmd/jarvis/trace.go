package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"jarvis"
	"jarvis/internal/dataset"
	"jarvis/internal/env"
	"jarvis/internal/reward"
	"jarvis/internal/rl"
	"jarvis/internal/smarthome"
	"jarvis/internal/trace"
)

// runTrace builds a compact Jarvis system — learning phase, anomaly
// filter, constrained optimizer — then drives one fully traced decision
// episode through it: every decision step is a sampled trace covering the
// RL selection, the P_safe audit, and the anomaly score. The result is
// written as a Chrome trace_event document (chrome://tracing, Perfetto),
// giving a one-command way to look at the pipeline's time breakdown
// without running a daemon.
func runTrace(path string, seed int64, quick bool, out *os.File) error {
	learningDays, episodes := 3, 10
	if quick {
		learningDays, episodes = 2, 2
	}

	home := smarthome.NewFullHome()
	sys, err := jarvis.New(home.Env, jarvis.Config{Seed: seed, Filter: true})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	gen := dataset.NewGenerator(home, dataset.HomeAConfig())
	start := time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC)
	days, err := gen.Days(start, learningDays, rng)
	if err != nil {
		return fmt.Errorf("learning phase: %w", err)
	}
	anoms, err := dataset.SynthesizeAnomalies(home, days, 200, rng)
	if err != nil {
		return err
	}
	normals, err := dataset.NormalSamples(days, 200, rng)
	if err != nil {
		return err
	}
	if _, err := sys.TrainFilter(append(anoms, normals...)); err != nil {
		return fmt.Errorf("filter training: %w", err)
	}
	eps := dataset.Episodes(days)
	sys.Learn(eps)
	if err := sys.AllowManual(home.Thermostat, smarthome.ThermostatActOff); err != nil {
		return err
	}
	ctx := days[len(days)-1].Context
	rs, err := reward.New(home.Env, reward.Config{
		Functionalities: smarthome.Functionalities(
			home.Env, home.TempSensor, home.Thermostat, ctx.Prices, 0.4, 0.3, 0.3),
		Preferred: sys.PreferredTimes(eps),
		Instances: smarthome.InstancesPerDay,
	})
	if err != nil {
		return err
	}
	if _, err := sys.Train(
		rl.SimConfig{Initial: home.InitialState(), Reward: rs},
		jarvis.TrainConfig{Agent: rl.AgentConfig{Episodes: episodes, DecideEvery: 15, ReplayEvery: 4}},
	); err != nil {
		return fmt.Errorf("optimizer training: %w", err)
	}

	// One traced day: a decision every 15 minutes, each under its own
	// sampled trace, applying the recommended action as we go.
	const decideEvery = 15
	tracer := trace.New(smarthome.InstancesPerDay / decideEvery)
	tracer.SetSeed(uint64(seed))
	tracer.SetSampleEvery(1)
	e := home.Env
	table := sys.SafeTable()
	state := home.InitialState()
	for minute := 0; minute < smarthome.InstancesPerDay; minute += decideEvery {
		sp := tracer.Start("jarvis.decide")
		sp.AnnotateInt("minute", int64(minute))
		d, err := sys.RecommendDecisionTraced(sp, state, minute)
		if err != nil {
			return err
		}
		next, terr := e.Transition(state, d.Action)
		if terr == nil {
			table.SafeTransitionTraced(sp, e.StateKey(state), e.StateKey(next), d.Action)
			sys.Filter().ScoreTraced(sp, env.Transition{
				From: state, Act: d.Action, To: next,
				Instance: minute, At: start.Add(time.Duration(minute) * time.Minute),
			})
			state = next
		}
		sp.End()
	}

	traces := tracer.Ring().Recent(0)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, traces); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	var spans int
	for _, td := range traces {
		spans += len(td.Spans)
	}
	fmt.Fprintf(out, "traced %d decisions (%d spans) into %s — open in chrome://tracing or https://ui.perfetto.dev\n",
		len(traces), spans, path)
	return nil
}
