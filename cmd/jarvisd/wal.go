package main

import (
	"encoding/json"
	"math/rand"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/trace"
	"jarvis/internal/wal"
)

// The daemon journals two record kinds to its write-ahead log, both as one
// JSON object per record:
//
//	evt — every applied device event: the audit trail. Replay re-derives
//	      the transition and the P_safe verdict, so a restarted daemon
//	      reaches the exact pre-crash environment state and violation
//	      count.
//	txn — every event the learning path accepted (i.e. not shed by
//	      admission control). Carries the pre-event state, so replay can
//	      recompute the reward and re-observe the transition into the
//	      replay buffer, then re-run the same every-Nth learn steps with
//	      the same per-step seeds. A crashed-and-replayed daemon ends in
//	      the same training state as one that never crashed.
//
// Records carry a sequence number (events and transitions count
// separately). A checkpoint save persists both counters and then resets
// the log; if the daemon crashes between the save and the reset, replay
// skips every record whose sequence the checkpoint already covers, so the
// overlap window double-applies nothing.
type walRecord struct {
	K string          `json:"k"`           // "evt" | "txn"
	N int             `json:"n"`           // sequence number within the kind
	M int             `json:"m"`           // minute-of-day at ingest
	D int             `json:"d"`           // device index
	A device.ActionID `json:"a"`           // action applied to device D
	U bool            `json:"u,omitempty"` // evt: flagged unsafe by P_safe
	S env.State       `json:"s,omitempty"` // txn: state before the event
}

// journal appends one record to the WAL. Append failures degrade
// durability, never availability: they are counted and logged, and the
// request proceeds. A sampled request's span gets a wal.append child
// showing the durability cost inside the request.
func (s *server) journal(sp *trace.Span, rec walRecord) {
	if s.wal == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err == nil {
		err = s.wal.AppendTraced(sp, b)
	}
	if err != nil {
		mWALAppendFailures.Inc()
		s.cfg.Logf("jarvisd: wal append (%s #%d) failed: %v", rec.K, rec.N, err)
	}
}

// openWAL opens (or creates) the journal and replays whatever survived the
// last run on top of the restored checkpoint. Must run after the restore /
// fresh-training decision so the replay applies to the correct base state.
// A WAL that cannot be opened disables journaling for this run rather than
// keeping the daemon down — the failure is loud in the log and in
// wal.append.failures staying at zero.
func (s *server) openWAL() {
	wl, err := wal.Open(s.cfg.WALDir, wal.Options{Policy: s.cfg.WALSync})
	if err != nil {
		s.cfg.Logf("jarvisd: wal unavailable (%v); continuing without journaling", err)
		return
	}
	s.wal = wl
	if rs := wl.Recovery(); rs.TruncatedBytes > 0 {
		s.cfg.Logf("jarvisd: wal recovery truncated %d torn bytes", rs.TruncatedBytes)
	}
	events0, txns0 := s.eventsIngested, s.onlineSteps
	err = wl.Replay(func(b []byte) error {
		var rec walRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			// The framing CRC already passed, so this is a foreign or
			// future-format record: skip it, don't kill recovery.
			s.cfg.Logf("jarvisd: wal replay: skipping undecodable record: %v", err)
			return nil
		}
		s.applyWALRecord(rec)
		return nil
	})
	if err != nil {
		s.cfg.Logf("jarvisd: wal replay stopped early: %v", err)
	}
	if s.eventsIngested != events0 || s.onlineSteps != txns0 {
		s.cfg.Logf("jarvisd: wal replay reapplied %d events, %d learning transitions",
			s.eventsIngested-events0, s.onlineSteps-txns0)
	}
}

// applyWALRecord replays one journaled record through the same code the
// live path runs, skipping records the restored checkpoint already covers.
func (s *server) applyWALRecord(rec walRecord) {
	e := s.home.Env
	switch rec.K {
	case "evt":
		if rec.N <= s.eventsIngested {
			return // captured by the checkpoint this run restored from
		}
		if rec.D < 0 || rec.D >= e.K() {
			s.cfg.Logf("jarvisd: wal replay: evt #%d has bad device %d", rec.N, rec.D)
			return
		}
		a := env.NoOp(e.K())
		a[rec.D] = rec.A
		next, err := e.Transition(s.state, a)
		if err != nil {
			s.cfg.Logf("jarvisd: wal replay: evt #%d does not apply: %v", rec.N, err)
			return
		}
		// Re-derive the safety verdict instead of trusting the journaled
		// flag: the restored P_safe is deterministic, and recomputing keeps
		// the replayed violation count honest even against a stale record.
		table := s.sys.SafeTable()
		if !table.SafeTransition(e.StateKey(s.state), e.StateKey(next), a) {
			s.violations++
			mEventsUnsafe.Inc()
		}
		s.state = next
		s.eventsIngested++
		mWALReplayedEvents.Inc()

	case "txn":
		if rec.N <= s.onlineSteps {
			return
		}
		if len(rec.S) != e.K() || rec.D < 0 || rec.D >= e.K() {
			s.cfg.Logf("jarvisd: wal replay: txn #%d malformed", rec.N)
			return
		}
		a := env.NoOp(e.K())
		a[rec.D] = rec.A
		s.ingestTransition(nil, rec.S, a, rec.M)
		mWALReplayedTxns.Inc()

	default:
		s.cfg.Logf("jarvisd: wal replay: unknown record kind %q", rec.K)
	}
}

// ingestTransition feeds one observed transition into the online learner:
// reward + replay buffer via ObserveTransition, then one learn step every
// OnlineTrainEvery transitions. The live event path and WAL replay both
// come through here with identical inputs, and each learn step draws from
// an RNG seeded only by (daemon seed, transition count) — never by
// wall-clock or by how the process got here — so a crashed-and-replayed
// daemon walks the exact training trajectory of one that never crashed.
func (s *server) ingestTransition(sp *trace.Span, prev env.State, a env.Action, minute int) {
	s.onlineSteps++
	if _, _, err := s.sys.ObserveTransition(prev, a, minute); err != nil {
		s.cfg.Logf("jarvisd: online observe failed: %v", err)
		return
	}
	mOnlineObserved.Inc()
	if s.cfg.OnlineTrainEvery > 0 && s.onlineSteps%s.cfg.OnlineTrainEvery == 0 {
		rng := rand.New(rand.NewSource(stepSeed(uint64(s.cfg.Seed), uint64(s.onlineSteps))))
		ran, err := s.sys.LearnOnlineTraced(sp, rng)
		switch {
		case err != nil:
			s.cfg.Logf("jarvisd: online learn step failed: %v", err)
		case ran:
			s.learnSteps++
			mOnlineLearnSteps.Inc()
		}
	}
}

// stepSeed mixes the daemon seed and a step counter into an independent
// RNG seed (splitmix64 finalizer). Deriving per-step seeds this way keeps
// online learning deterministic in the transition count alone, which is
// exactly what WAL replay reconstructs.
func stepSeed(seed, step uint64) int64 {
	x := seed + 0x9e3779b97f4a7c15*(step+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}
