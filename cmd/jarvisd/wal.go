package main

import (
	"jarvis/internal/env"
	"jarvis/internal/replay"
	"jarvis/internal/rl"
	"jarvis/internal/trace"
	"jarvis/internal/wal"
)

// The daemon journals three record kinds to its write-ahead log — evt
// (every applied device event), txn (every event the learning path
// accepted), and rec (every recommendation served). The record layout and
// the full semantics live in internal/replay (replay.Record): the same
// type is what the offline replay engine re-executes, so the daemon's
// recovery path and `jarvis whatif` read one format by construction.
//
// Records carry a per-kind sequence number. A checkpoint save persists
// all three counters and then resets the log; if the daemon crashes
// between the save and the reset, replay skips every record whose
// sequence the checkpoint already covers, so the overlap window
// double-applies nothing.

// walSpan is the first/last kind-local sequence number currently sitting
// in the journal — the /healthz view of what a crash would replay.
type walSpan struct {
	First int `json:"first"`
	Last  int `json:"last"`
}

// noteWALRecord folds one journaled (or boot-replayed) record into the
// per-kind span map. Caller holds s.mu.
func (s *server) noteWALRecord(k string, n int) {
	if s.walSpans == nil {
		s.walSpans = make(map[string]walSpan)
	}
	sp, ok := s.walSpans[k]
	if !ok {
		s.walSpans[k] = walSpan{First: n, Last: n}
		return
	}
	if n < sp.First {
		sp.First = n
	}
	if n > sp.Last {
		sp.Last = n
	}
	s.walSpans[k] = sp
}

// journal appends one record to the WAL. Append failures degrade
// durability, never availability: they are counted and logged, and the
// request proceeds. A sampled request's span gets a wal.append child
// showing the durability cost inside the request.
func (s *server) journal(sp *trace.Span, rec replay.Record) {
	if s.wal == nil {
		return
	}
	b, err := rec.Encode()
	if err == nil {
		err = s.wal.AppendTraced(sp, b)
	}
	if err != nil {
		mWALAppendFailures.Inc()
		s.cfg.Logf("jarvisd: wal append (%s #%d) failed: %v", rec.K, rec.N, err)
		return
	}
	if c, ok := mWALRecords[rec.K]; ok {
		c.Inc()
	}
	s.noteWALRecord(rec.K, rec.N)
}

// openWAL opens (or creates) the journal and replays whatever survived the
// last run on top of the restored checkpoint. Must run after the restore /
// fresh-training decision so the replay applies to the correct base state.
// A WAL that cannot be opened disables journaling for this run rather than
// keeping the daemon down — the failure is loud in the log and in
// wal.append.failures staying at zero.
func (s *server) openWAL() {
	wl, err := wal.Open(s.cfg.WALDir, wal.Options{Policy: s.cfg.WALSync, OpenFile: s.cfg.WALOpenFile})
	if err != nil {
		s.cfg.Logf("jarvisd: wal unavailable (%v); continuing without journaling", err)
		return
	}
	s.wal = wl
	if rs := wl.Recovery(); rs.TruncatedBytes > 0 {
		s.cfg.Logf("jarvisd: wal recovery truncated %d torn bytes", rs.TruncatedBytes)
	}
	events0, txns0 := s.eventsIngested, s.onlineSteps
	err = wl.Replay(func(b []byte) error {
		rec, derr := replay.DecodeRecord(b)
		if derr != nil {
			// The framing CRC already passed, so this is a foreign or
			// future-format record: skip it, don't kill recovery.
			s.cfg.Logf("jarvisd: wal replay: skipping undecodable record: %v", derr)
			return nil
		}
		s.applyWALRecord(rec)
		// Even a record the checkpoint already covers still sits in the
		// journal until the next reset; the span map reports what is on
		// disk, not what was applied.
		s.noteWALRecord(rec.K, rec.N)
		return nil
	})
	if err != nil {
		s.cfg.Logf("jarvisd: wal replay stopped early: %v", err)
	}
	if s.eventsIngested != events0 || s.onlineSteps != txns0 {
		s.cfg.Logf("jarvisd: wal replay reapplied %d events, %d learning transitions",
			s.eventsIngested-events0, s.onlineSteps-txns0)
	}
}

// applyWALRecord replays one journaled record through the same code the
// live path runs, skipping records the restored checkpoint already covers.
func (s *server) applyWALRecord(rec replay.Record) {
	e := s.home.Env
	switch rec.K {
	case replay.KindEvent:
		if rec.N <= s.eventsIngested {
			return // captured by the checkpoint this run restored from
		}
		if rec.D < 0 || rec.D >= e.K() {
			s.cfg.Logf("jarvisd: wal replay: evt #%d has bad device %d", rec.N, rec.D)
			return
		}
		a := env.NoOp(e.K())
		a[rec.D] = rec.A
		next, err := e.Transition(s.state, a)
		if err != nil {
			s.cfg.Logf("jarvisd: wal replay: evt #%d does not apply: %v", rec.N, err)
			return
		}
		// Re-derive the safety verdict instead of trusting the journaled
		// flag: the restored P_safe is deterministic, and recomputing keeps
		// the replayed violation count honest even against a stale record.
		table := s.sys.SafeTable()
		if !table.SafeTransition(e.StateKey(s.state), e.StateKey(next), a) {
			s.violations++
			mEventsUnsafe.Inc()
			s.mUnsafeByDevice[rec.D].Inc()
		}
		s.state = next
		s.eventsIngested++
		mWALReplayedEvents.Inc()

	case replay.KindTransition:
		if rec.N <= s.onlineSteps {
			return
		}
		if len(rec.S) != e.K() || rec.D < 0 || rec.D >= e.K() {
			s.cfg.Logf("jarvisd: wal replay: txn #%d malformed", rec.N)
			return
		}
		a := env.NoOp(e.K())
		a[rec.D] = rec.A
		s.ingestTransition(nil, rec.S, a, rec.M)
		mWALReplayedTxns.Inc()

	case replay.KindRecommend:
		// A recommendation has no state effect; daemon recovery only bumps
		// the counter so a post-crash checkpoint stays sequence-correct.
		// (The offline engine is what re-executes the policy here.)
		if rec.N <= s.recommendsServed {
			return
		}
		s.recommendsServed++
		mWALReplayedRecs.Inc()

	default:
		s.cfg.Logf("jarvisd: wal replay: unknown record kind %q", rec.K)
	}
}

// ingestTransition feeds one observed transition into the online learner:
// reward + replay buffer via ObserveTransition, then one learn step every
// OnlineTrainEvery transitions. The live event path and WAL replay both
// come through here with identical inputs, and each learn step draws from
// an RNG seeded only by (daemon seed, transition count) — never by
// wall-clock or by how the process got here — so a crashed-and-replayed
// daemon (and the offline replay engine, which calls rl.StepRNG the same
// way) walks the exact training trajectory of one that never crashed.
func (s *server) ingestTransition(sp *trace.Span, prev env.State, a env.Action, minute int) {
	s.onlineSteps++
	if _, _, err := s.sys.ObserveTransition(prev, a, minute); err != nil {
		s.cfg.Logf("jarvisd: online observe failed: %v", err)
		return
	}
	mOnlineObserved.Inc()
	if s.cfg.OnlineTrainEvery > 0 && s.onlineSteps%s.cfg.OnlineTrainEvery == 0 {
		ran, err := s.sys.LearnOnlineTraced(sp, rl.StepRNG(s.cfg.Seed, s.onlineSteps))
		switch {
		case err != nil:
			s.cfg.Logf("jarvisd: online learn step failed: %v", err)
		case ran:
			s.learnSteps++
			mOnlineLearnSteps.Inc()
			s.maybeShadowEval()
		}
	}
}
