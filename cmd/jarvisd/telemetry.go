package main

import (
	"jarvis/internal/replay"
	"jarvis/internal/telemetry"
)

// Metric handles, resolved once at init. The daemon namespace covers the
// connection lifecycle, the request loop, checkpointing, and the decision
// log; everything below it (rl.*, policy.*, anomaly.*, fault.*) is
// reported by the instrumented packages themselves through the same
// Default registry, so one /metrics scrape sees the whole pipeline.
var (
	mConnsAccepted = telemetry.Default.Counter("jarvisd.conns.accepted")
	mConnsActive   = telemetry.Default.Gauge("jarvisd.conns.active")
	mAcceptRetries = telemetry.Default.Counter("jarvisd.accept.retries")
	mAcceptErrors  = telemetry.Default.Counter("jarvisd.accept.errors")

	// Per-op request counters: one labeled family, jarvisd.requests{op},
	// with every child resolved at init into a map so handle stays a
	// single lookup — a vec child IS a *Counter, so the hot path is
	// byte-identical to the old per-name scalars. Snapshots and SLO
	// objectives address each series by its flat name, e.g.
	// `jarvisd.requests{op="recommend"}`.
	mRequestsVec = telemetry.Default.CounterVec("jarvisd.requests", "op")
	mRequests    = map[string]*telemetry.Counter{
		"state":      mRequestsVec.With("state"),
		"event":      mRequestsVec.With("event"),
		"recommend":  mRequestsVec.With("recommend"),
		"violations": mRequestsVec.With("violations"),
		"checkpoint": mRequestsVec.With("checkpoint"),
		"learnstate": mRequestsVec.With("learnstate"),
		"promote":    mRequestsVec.With("promote"),
	}
	mRequestsUnknown = mRequestsVec.With("unknown")
	mRequestLatency  = telemetry.Default.Histogram("jarvisd.request.latency")

	// Codec negotiation outcomes (one increment per connection) plus the
	// binary loop's batching effectiveness: requests coalesced into an
	// already-open batch, and recommend responses served from a shared
	// in-batch evaluation.
	mWireJSON        = telemetry.Default.Counter("server.wire.json")
	mWireBinary      = telemetry.Default.Counter("server.wire.binary")
	mWireCoalesced   = telemetry.Default.Counter("server.wire.coalesced")
	mWireSharedEvals = telemetry.Default.Counter("server.wire.shared_evals")

	// Binary-op counters, indexed by opcode; same namespace as the JSON
	// per-op counters so one scrape sees both codecs.
	mBinRequests = map[uint8]*telemetry.Counter{
		1: mRequests["state"],      // wire.OpState
		2: mRequests["event"],      // wire.OpEvent
		3: mRequests["recommend"],  // wire.OpRecommend
		4: mRequests["violations"], // wire.OpViolations
		5: mRequests["checkpoint"], // wire.OpCheckpoint
		6: mRequests["learnstate"], // wire.OpLearnState
	}

	binOpSpans = map[uint8]string{
		1: "jarvisd.state",
		2: "jarvisd.event",
		3: "jarvisd.recommend",
		4: "jarvisd.violations",
		5: "jarvisd.checkpoint",
		6: "jarvisd.learnstate",
	}

	// Root span names for sampled request traces, one per op. A static map
	// keeps the traced request path free of string concatenation.
	opSpanNames = map[string]string{
		"state":      "jarvisd.state",
		"event":      "jarvisd.event",
		"recommend":  "jarvisd.recommend",
		"violations": "jarvisd.violations",
		"checkpoint": "jarvisd.checkpoint",
		"learnstate": "jarvisd.learnstate",
		"promote":    "jarvisd.promote",
	}

	// The daemon's safety-enforcement surface: every applied event is
	// checked against the learned P_safe, and unsafe ones are counted here
	// (the hub is a monitor, so they execute but are flagged). The scalar
	// total backs the safety-violations SLO budget; the labeled family
	// breaks denials down by offending device (children resolved by device
	// index into s.mUnsafeByDevice at newServer time, so the audit path
	// stays a slice index + atomic add).
	mEventsUnsafe    = telemetry.Default.Counter("jarvisd.events.unsafe")
	mAuditDenialsVec = telemetry.Default.CounterVec("jarvisd.audit.denials", "device")

	mCkptSaves           = telemetry.Default.Counter("jarvisd.checkpoint.saves")
	mCkptSaveFailures    = telemetry.Default.Counter("jarvisd.checkpoint.save_failures")
	mCkptRestores        = telemetry.Default.Counter("jarvisd.checkpoint.restores")
	mCkptRestoreFailures = telemetry.Default.Counter("jarvisd.checkpoint.restore_failures")

	mDecisionsLogged = telemetry.Default.Counter("jarvisd.decisions.logged")

	// Admission control: the inflight-request depth shedding decisions
	// key off, and what was actually shed at each tier (learning
	// ingestion first, recommendations last; audit checks never).
	mQueueDepth     = telemetry.Default.Gauge("jarvisd.queue.depth")
	mShedEvents     = telemetry.Default.Counter("jarvisd.shed.events")
	mShedRecommends = telemetry.Default.Counter("jarvisd.shed.recommends")

	// The durability surface: journal append failures (the daemon keeps
	// serving, but the crash-recovery guarantee narrowed), per-kind append
	// counts, and what boot replay reapplied. The per-kind family's three
	// children are resolved here so journal() writes are one map lookup +
	// atomic add.
	mWALAppendFailures = telemetry.Default.Counter("jarvisd.wal.append_failures")
	mWALRecordsVec     = telemetry.Default.CounterVec("jarvisd.wal.records", "kind")
	mWALRecords        = map[string]*telemetry.Counter{
		replay.KindEvent:      mWALRecordsVec.With(replay.KindEvent),
		replay.KindTransition: mWALRecordsVec.With(replay.KindTransition),
		replay.KindRecommend:  mWALRecordsVec.With(replay.KindRecommend),
	}
	mWALReplayedEvents = telemetry.Default.Counter("jarvisd.wal.replayed.events")
	mWALReplayedTxns   = telemetry.Default.Counter("jarvisd.wal.replayed.txns")
	mWALReplayedRecs   = telemetry.Default.Counter("jarvisd.wal.replayed.recs")

	// Online learning driven by live (or replayed) traffic.
	mOnlineObserved   = telemetry.Default.Counter("jarvisd.online.observed")
	mOnlineLearnSteps = telemetry.Default.Counter("jarvisd.online.learn_steps")
)

// opSpanName maps a request op to its root span name.
func opSpanName(op string) string {
	if n, ok := opSpanNames[op]; ok {
		return n
	}
	return "jarvisd.unknown"
}

// binOpSpanName is opSpanName for binary opcodes.
func binOpSpanName(op uint8) string {
	if n, ok := binOpSpans[op]; ok {
		return n
	}
	return "jarvisd.unknown"
}
