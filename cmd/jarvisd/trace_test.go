package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jarvis/internal/trace"
)

// bootTracedServer starts a daemon tracing every request, with the anomaly
// filter, WAL, decision log, and debug listener all on — the full pipeline
// a sampled span tree is supposed to cover.
func bootTracedServer(t *testing.T) (*server, string) {
	t.Helper()
	logPath := filepath.Join(t.TempDir(), "decisions.jsonl")
	srv := startDebugTestServer(t, serverConfig{
		Seed: 1, LearningDays: 2, Episodes: 2,
		TraceSample:     1,
		AnomalyFilter:   true,
		WALDir:          filepath.Join(t.TempDir(), "wal"),
		DecisionLogPath: logPath,
	})
	return srv, logPath
}

// findTrace returns the newest completed trace with the given root name.
func findTrace(t *testing.T, srv *server, name string) *trace.TraceData {
	t.Helper()
	for _, td := range srv.tracer.Ring().Recent(0) {
		if td.Name == name {
			return td
		}
	}
	t.Fatalf("no completed trace named %q in ring", name)
	return nil
}

// TestRecommendTraceSpanTree: a sampled recommend request produces one
// trace whose span tree covers the server op, the queue wait, the RL
// selection, the policy audit, and the anomaly score — with every child
// span parented inside the tree.
func TestRecommendTraceSpanTree(t *testing.T) {
	srv, _ := bootTracedServer(t)
	if resp := srv.handle(request{Op: "recommend"}); !resp.OK {
		t.Fatalf("recommend: %+v", resp)
	}
	td := findTrace(t, srv, "jarvisd.recommend")
	if len(td.ID) != 16 {
		t.Errorf("trace ID %q is not 16 hex digits", td.ID)
	}
	if td.DurNs <= 0 {
		t.Errorf("trace duration %d, want > 0", td.DurNs)
	}
	seen := map[string]bool{}
	for i, sp := range td.Spans {
		seen[sp.Name] = true
		if i == 0 {
			if sp.Parent != -1 {
				t.Errorf("root span parent = %d, want -1", sp.Parent)
			}
			continue
		}
		if sp.Parent < 0 || int(sp.Parent) >= len(td.Spans) {
			t.Errorf("span %q has out-of-tree parent %d", sp.Name, sp.Parent)
		}
	}
	for _, want := range []string{"jarvisd.recommend", "queue.wait", "rl.select", "policy.audit", "anomaly.score"} {
		if !seen[want] {
			t.Errorf("span tree missing stage %q: %v", want, names(td))
		}
	}
}

// TestEventTraceCoversDurabilityPath: a traced event shows the safety
// audit, the WAL append, and the learning ingestion as spans.
func TestEventTraceCoversDurabilityPath(t *testing.T) {
	srv, _ := bootTracedServer(t)
	if resp := srv.handle(request{Op: "event", Device: "fridge", Action: "open_door"}); !resp.OK {
		t.Fatalf("event: %+v", resp)
	}
	td := findTrace(t, srv, "jarvisd.event")
	seen := map[string]bool{}
	for _, sp := range td.Spans {
		seen[sp.Name] = true
	}
	for _, want := range []string{"policy.audit", "wal.append", "learn.ingest"} {
		if !seen[want] {
			t.Errorf("event trace missing %q: %v", want, names(td))
		}
	}
}

func names(td *trace.TraceData) []string {
	out := make([]string, len(td.Spans))
	for i, sp := range td.Spans {
		out[i] = sp.Name
	}
	return out
}

// TestDecisionLogCarriesTraceID: the decision-log record written for a
// sampled recommendation carries the hex trace ID of the ring trace — the
// join key between the audit log and /debug/traces.
func TestDecisionLogCarriesTraceID(t *testing.T) {
	srv, logPath := bootTracedServer(t)
	if resp := srv.handle(request{Op: "recommend"}); !resp.OK {
		t.Fatalf("recommend: %+v", resp)
	}
	if err := srv.decisions.Sync(); err != nil {
		t.Fatalf("sync decision log: %v", err)
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("read decision log: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var rec decisionRecord
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &rec); err != nil {
		t.Fatalf("decision line: %v", err)
	}
	if rec.Trace == "" {
		t.Fatal("sampled recommendation logged without a trace ID")
	}
	td := findTrace(t, srv, "jarvisd.recommend")
	if rec.Trace != td.ID {
		t.Errorf("decision log trace %q != ring trace %q", rec.Trace, td.ID)
	}
	if rec.Anomaly == 0 {
		t.Log("anomaly score is exactly 0 (possible but unusual for a sigmoid output)")
	}
}

// TestTraceEndpoints: /debug/traces serves decodable JSON lines and
// /debug/traces/chrome a well-formed Chrome trace_event document whose
// complete events all name a span from the ring.
func TestTraceEndpoints(t *testing.T) {
	srv, _ := bootTracedServer(t)
	if resp := srv.handle(request{Op: "recommend"}); !resp.OK {
		t.Fatalf("recommend: %+v", resp)
	}
	if resp := srv.handle(request{Op: "state"}); !resp.OK {
		t.Fatalf("state: %+v", resp)
	}

	code, body := httpGet(t, srv, "/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces status = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) < 2 {
		t.Fatalf("/debug/traces returned %d lines, want >= 2", len(lines))
	}
	for _, line := range lines {
		var td trace.TraceData
		if err := json.Unmarshal([]byte(line), &td); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		if td.Name == "" || len(td.Spans) == 0 {
			t.Errorf("empty trace line: %q", line)
		}
	}

	code, body = httpGet(t, srv, "/debug/traces/chrome")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces/chrome status = %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var complete, withTraceID int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Name == "" || ev.Ts < 0 || ev.Dur < 0 {
				t.Errorf("malformed complete event: %+v", ev)
			}
			if _, ok := ev.Args["traceId"]; ok {
				withTraceID++
			}
		case "M":
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete < 2 {
		t.Errorf("chrome export has %d complete events, want >= 2", complete)
	}
	if withTraceID == 0 {
		t.Error("no complete event carries args.traceId")
	}

	// ?sort=slowest&n=1 returns exactly the slowest trace.
	code, body = httpGet(t, srv, "/debug/traces?sort=slowest&n=1")
	if code != http.StatusOK {
		t.Fatalf("slowest status = %d", code)
	}
	if n := len(strings.Split(strings.TrimSpace(string(body)), "\n")); n != 1 {
		t.Errorf("slowest n=1 returned %d traces", n)
	}
}

// TestTracingDisabledByDefault: without -trace-sample the ring stays empty
// and requests carry nil spans (no trace IDs in the decision log).
func TestTracingDisabledByDefault(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "decisions.jsonl")
	srv, err := newServer(serverConfig{
		Seed: 1, LearningDays: 2, Episodes: 2, DecisionLogPath: logPath,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	defer srv.Close()
	if resp := srv.handle(request{Op: "recommend"}); !resp.OK {
		t.Fatalf("recommend: %+v", resp)
	}
	if n := srv.tracer.Ring().Len(); n != 0 {
		t.Errorf("ring holds %d traces with tracing disabled", n)
	}
	if err := srv.decisions.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	var rec decisionRecord
	if err := json.Unmarshal([]byte(strings.TrimSpace(string(data))), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Trace != "" {
		t.Errorf("untraced recommendation has trace ID %q", rec.Trace)
	}
}

// TestMetricsPrometheusFormat: /metrics negotiates into Prometheus text
// exposition via ?format=prom or an Accept header, while the default stays
// the JSON snapshot.
func TestMetricsPrometheusFormat(t *testing.T) {
	srv := startDebugTestServer(t, serverConfig{Seed: 1, LearningDays: 2, Episodes: 2})
	if resp := srv.handle(request{Op: "recommend"}); !resp.OK {
		t.Fatalf("recommend: %+v", resp)
	}

	code, body := httpGet(t, srv, "/metrics?format=prom")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	text := string(body)
	if !strings.Contains(text, "# TYPE jarvisd_requests counter") {
		t.Errorf("missing requests counter TYPE line:\n%s", text)
	}
	// The registry is process-global, so other tests may have served
	// recommends too: assert a nonzero sample, not an exact count.
	var sampled bool
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, `jarvisd_requests{op="recommend"} `); ok {
			sampled = rest != "0"
		}
	}
	if !sampled {
		t.Errorf("recommend counter sample missing or zero:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE jarvisd_request_latency_seconds histogram") {
		t.Errorf("missing latency histogram TYPE line:\n%s", text)
	}

	// Accept-header negotiation without an explicit format.
	req, _ := http.NewRequest(http.MethodGet, "http://"+srv.DebugAddr()+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Accept: text/plain got Content-Type %q", ct)
	}

	// Default stays JSON.
	_, body = httpGet(t, srv, "/metrics")
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Errorf("default /metrics is not JSON: %v", err)
	}
}
