package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"jarvis"
	"jarvis/internal/dataset"
	"jarvis/internal/env"
	"jarvis/internal/reward"
	"jarvis/internal/rl"
	"jarvis/internal/smarthome"
)

// serverConfig sizes the daemon's startup learning phase.
type serverConfig struct {
	Seed         int64
	LearningDays int
	Episodes     int
}

// request is one JSON line from a client.
type request struct {
	Op     string `json:"op"`
	Device string `json:"device,omitempty"`
	Action string `json:"action,omitempty"`
}

// response is one JSON line back.
type response struct {
	OK         bool     `json:"ok"`
	Error      string   `json:"error,omitempty"`
	State      []string `json:"state,omitempty"`
	Action     string   `json:"action,omitempty"`
	Unsafe     bool     `json:"unsafe,omitempty"`
	Violations int      `json:"violations,omitempty"`
	Minute     int      `json:"minute,omitempty"`
}

// server owns the environment state and the trained Jarvis system. All
// state mutations are serialized by mu; connections are handled
// concurrently.
type server struct {
	home *smarthome.FullHome
	sys  *jarvis.System

	mu         sync.Mutex
	state      env.State
	startOfDay time.Time
	violations int

	ln   net.Listener
	wg   sync.WaitGroup
	stop chan struct{}
}

func newServer(cfg serverConfig) (*server, error) {
	if cfg.LearningDays <= 0 {
		cfg.LearningDays = 7
	}
	if cfg.Episodes <= 0 {
		cfg.Episodes = 60
	}
	home := smarthome.NewFullHome()
	sys, err := jarvis.New(home.Env, jarvis.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := dataset.NewGenerator(home, dataset.HomeAConfig())
	start := time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC)
	days, err := gen.Days(start, cfg.LearningDays, rng)
	if err != nil {
		return nil, fmt.Errorf("learning phase: %w", err)
	}
	eps := dataset.Episodes(days)
	sys.Learn(eps)
	if err := sys.AllowManual(home.Thermostat, smarthome.ThermostatActOff); err != nil {
		return nil, err
	}

	ctx := days[len(days)-1].Context
	rs, err := reward.New(home.Env, reward.Config{
		Functionalities: smarthome.Functionalities(
			home.Env, home.TempSensor, home.Thermostat, ctx.Prices, 0.4, 0.3, 0.3),
		Preferred: sys.PreferredTimes(eps),
		Instances: smarthome.InstancesPerDay,
		Routine: map[int]bool{
			home.LivingLight: true, home.BedLight: true, home.Thermostat: true,
			home.Oven: true, home.TV: true, home.Washer: true, home.Dishwasher: true,
		},
	})
	if err != nil {
		return nil, err
	}
	if _, err := sys.Train(rl.SimConfig{
		Initial: home.InitialState(),
		Reward:  rs,
	}, jarvis.TrainConfig{Agent: rl.AgentConfig{
		Episodes: cfg.Episodes, DecideEvery: 15, ReplayEvery: 4,
	}}); err != nil {
		return nil, fmt.Errorf("optimizer training: %w", err)
	}

	return &server{
		home:       home,
		sys:        sys,
		state:      home.InitialState(),
		startOfDay: time.Now().Truncate(24 * time.Hour),
		stop:       make(chan struct{}),
	}, nil
}

func (s *server) tableSize() int { return s.sys.SafeTable().Len() }

// listen starts accepting connections.
func (s *server) listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound address.
func (s *server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and waits for all connections to drain.
func (s *server) Close() error {
	close(s.stop)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return
			default:
				return // listener failed; daemon exits on signal anyway
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(conn)
		}()
	}
}

func (s *server) serve(conn net.Conn) {
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		select {
		case <-s.stop:
			return
		default:
		}
	}
}

// minuteOfDay maps wall time onto the episode's time instance.
func (s *server) minuteOfDay(now time.Time) int {
	m := int(now.Sub(s.startOfDay).Minutes()) % smarthome.InstancesPerDay
	if m < 0 {
		m += smarthome.InstancesPerDay
	}
	return m
}

func (s *server) handle(req request) response {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.home.Env
	minute := s.minuteOfDay(time.Now())

	switch req.Op {
	case "state":
		return response{OK: true, State: stateNames(e, s.state), Minute: minute, Violations: s.violations}

	case "event":
		di, ok := e.DeviceIndex(req.Device)
		if !ok {
			return response{Error: fmt.Sprintf("unknown device %q", req.Device)}
		}
		act, ok := e.Device(di).ActionID(req.Action)
		if !ok {
			return response{Error: fmt.Sprintf("device %q has no action %q", req.Device, req.Action)}
		}
		a := env.NoOp(e.K())
		a[di] = act
		next, err := e.Transition(s.state, a)
		if err != nil {
			return response{Error: err.Error()}
		}
		table := s.sys.SafeTable()
		unsafe := !table.SafeTransition(e.StateKey(s.state), e.StateKey(next), a)
		if unsafe {
			s.violations++
		}
		s.state = next
		return response{OK: true, State: stateNames(e, s.state), Unsafe: unsafe, Minute: minute, Violations: s.violations}

	case "recommend":
		act, err := s.sys.Recommend(s.state, minute)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true, Action: e.FormatAction(act), Minute: minute}

	case "violations":
		return response{OK: true, Violations: s.violations, Minute: minute}
	}
	return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
}

func stateNames(e *env.Environment, s env.State) []string {
	out := make([]string, len(s))
	for i, st := range s {
		out[i] = e.Device(i).Name() + "=" + e.Device(i).StateName(st)
	}
	return out
}
