package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"jarvis"
	"jarvis/internal/anomaly"
	"jarvis/internal/checkpoint"
	"jarvis/internal/compiled"
	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/health"
	"jarvis/internal/replay"
	"jarvis/internal/replica"
	"jarvis/internal/rl"
	"jarvis/internal/smarthome"
	"jarvis/internal/telemetry"
	"jarvis/internal/trace"
	"jarvis/internal/tsdb"
	"jarvis/internal/wal"
	"jarvis/internal/wire"
)

// serverConfig sizes the daemon's startup learning phase and its
// resilience knobs.
type serverConfig struct {
	Seed         int64
	LearningDays int
	Episodes     int

	// UseDNN trains the deep Q network backend instead of the tabular
	// default (the -dnn flag). The two backends serialize differently, so
	// checkpoints record it and refuse to restore across a mismatch.
	UseDNN bool

	// Compiled enables the compiled-policy fast path: after training or
	// restore, the greedy policy is distilled into a dense state×bucket
	// decision table that serves steady-state recommendations without
	// touching the agent. Oversized products (e.g. the per-minute DNN
	// backend) refuse to compile and the daemon transparently keeps the
	// agent path. Disabled by CompiledOff (the -compiled=false flag).
	CompiledOff bool

	// CheckpointPath, when non-empty, enables checkpoint/restore: startup
	// restores the trained system from the newest usable generation
	// instead of retraining, and the daemon re-checkpoints after training,
	// on demand, and on shutdown. Generations live next to the path
	// (path.000001, ... plus a MANIFEST); writes are atomic and
	// checksummed, and a corrupt or mismatched generation falls back to
	// the previous one, then to fresh training.
	CheckpointPath string
	// CheckpointRetain caps how many checkpoint generations are kept
	// (default 4, minimum 1).
	CheckpointRetain int

	// WALDir, when non-empty, journals every applied event and every
	// accepted learning transition to a write-ahead log in this
	// directory. On startup, surviving records are replayed on top of the
	// restored checkpoint, so a crashed daemon resumes in the training
	// state it died in; each successful checkpoint resets the log.
	WALDir string
	// WALSync is the journal fsync cadence (default wal.SyncEveryRecord).
	WALSync wal.SyncPolicy
	// WALOpenFile substitutes the journal's segment-file opener (nil uses
	// the real filesystem) — the disk-fault injection seam the chaos tests
	// thread internal/fault through.
	WALOpenFile func(name string, flag int, perm os.FileMode) (wal.File, error)

	// FollowAddr, when non-empty, starts the daemon as a hot standby: it
	// dials the primary at this address, adopts its snapshot, applies the
	// shipped WAL stream through the same replay machinery boot recovery
	// uses, and serves read-only recommendations from the replica policy.
	// Writes (event, checkpoint) are rejected while following. On primary
	// silence past PromoteAfter — or an explicit promote op — the standby
	// seals its state and promotes to a full read-write primary.
	FollowAddr string
	// PromoteAfter is the primary-silence budget before automatic
	// promotion (default 5s; negative = never promote automatically, wait
	// for an explicit promote op).
	PromoteAfter time.Duration

	// MaxQueue is the admission-control threshold on concurrently served
	// requests. Above MaxQueue/2 the learning ingestion of events is shed
	// (the safety audit always runs); above MaxQueue, recommendations are
	// rejected with a busy response and a retry hint. 0 picks the default
	// (64); negative disables shedding entirely.
	MaxQueue int

	// OnlineTrainEvery runs one replay learn step every N accepted
	// transitions (default 4; negative disables online learning).
	OnlineTrainEvery int

	// FixedMinute, when positive, pins the minute-of-day used for every
	// request instead of deriving it from wall time — determinism for
	// crash-recovery tests that must replay into an identical state.
	FixedMinute int

	// DebugAddr, when non-empty, serves the observability endpoints
	// (/metrics, /healthz, /debug/vars, /debug/pprof) on a separate HTTP
	// listener; see debug.go.
	DebugAddr string

	// DecisionLogPath, when non-empty, appends one JSON line per
	// recommendation and per checked event to this file; see decision.go.
	DecisionLogPath string
	// DecisionLogMaxBytes, when positive, rotates the decision log once the
	// active file would exceed this size (the sealed file is fsynced and
	// renamed to path.NNNNNN); 0 keeps one unbounded file.
	DecisionLogMaxBytes int64
	// DecisionLogKeep caps the rotated decision-log files retained beside
	// the active one (default 4 when rotation is enabled).
	DecisionLogKeep int

	// TraceSample, when positive, head-samples one in every TraceSample
	// requests into the span tracer (1 traces everything). Sampled traces
	// retire into a bounded in-memory ring served by /debug/traces; their
	// trace IDs are stamped into the decision log. 0 disables tracing —
	// nil spans end to end, zero request-path overhead.
	TraceSample int
	// TraceRing caps how many completed traces the ring retains (default
	// trace.DefaultRingCapacity).
	TraceRing int

	// AnomalyFilter, when true, trains the ANN benign-anomaly filter
	// during the learning phase and scores every recommendation's
	// resulting transition through it; the score lands in the decision log
	// and, on sampled requests, in an anomaly.score span.
	AnomalyFilter bool

	// AlertRules is the alert engine's rule set (nil = health.DefaultRules;
	// see the -alert-rules flag for loading a file). AlertingOff disables
	// the whole health subsystem — engine, SLO tracker, and shadow
	// evaluator.
	AlertRules  []health.Rule
	AlertingOff bool
	// AlertLogPath appends one JSON line per alert firing/resolved
	// transition (empty = disabled).
	AlertLogPath string
	// SLOWindow is the rolling window SLO burn rates are computed over
	// (default 10m).
	SLOWindow time.Duration
	// ShadowEvery runs one shadow evaluation per N online learn steps
	// (default 32; <= 0 disables). Shadow evaluation also needs -wal and
	// -checkpoint: it replays the journal against the newest generation.
	ShadowEvery int
	// HealthInterval is the alert/SLO evaluation cadence (default 5s).
	HealthInterval time.Duration

	// TSDBDir, when non-empty, opens an on-disk metric history in this
	// directory: one delta-encoded telemetry snapshot per TSInterval,
	// WAL-style segment rotation and retention, served back by
	// /debug/tsdb. With a store open the SLO tracker reads its window
	// edges from it instead of an in-memory ring, so burn rates and
	// /debug/tsdb range queries agree by construction. Requires the
	// health subsystem (no-op under AlertingOff).
	TSDBDir string
	// TSInterval is the history append cadence (default HealthInterval).
	TSInterval time.Duration

	// IdleTimeout bounds how long a connection may sit silent between
	// requests before the daemon drops it (default 5m).
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write (default 10s).
	WriteTimeout time.Duration

	// Logf receives operational messages; nil discards them.
	Logf func(format string, args ...any)
}

func (c serverConfig) withDefaults() serverConfig {
	if c.LearningDays <= 0 {
		c.LearningDays = 7
	}
	if c.Episodes <= 0 {
		c.Episodes = 60
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.CheckpointRetain <= 0 {
		c.CheckpointRetain = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.OnlineTrainEvery == 0 {
		c.OnlineTrainEvery = 4
	}
	if c.SLOWindow <= 0 {
		c.SLOWindow = 10 * time.Minute
	}
	if c.ShadowEvery == 0 {
		c.ShadowEvery = 32
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 5 * time.Second
	}
	if c.TSInterval <= 0 {
		c.TSInterval = c.HealthInterval
	}
	if c.PromoteAfter == 0 {
		c.PromoteAfter = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// request is one JSON line from a client.
type request struct {
	Op     string `json:"op"`
	Device string `json:"device,omitempty"`
	Action string `json:"action,omitempty"`
}

// response is one JSON line back.
type response struct {
	OK         bool     `json:"ok"`
	Error      string   `json:"error,omitempty"`
	State      []string `json:"state,omitempty"`
	Action     string   `json:"action,omitempty"`
	Unsafe     bool     `json:"unsafe,omitempty"`
	Violations int      `json:"violations,omitempty"`
	Minute     int      `json:"minute,omitempty"`
	Degraded   int      `json:"degraded,omitempty"`
	// Q is the Q value backing a recommendation (0 on a degraded fallback).
	Q float64 `json:"q,omitempty"`
	// Busy is set when admission control rejected the request; the client
	// should back off RetryAfterMs before retrying.
	Busy         bool `json:"busy,omitempty"`
	RetryAfterMs int  `json:"retryAfterMs,omitempty"`
	// learnstate: the online-learning fingerprint — replay buffer size,
	// ingest/learn counters, and a digest of the serialized Q function.
	// Two daemons with equal fingerprints are in identical training
	// states, which is exactly what the crash-recovery harness asserts.
	ReplaySize  int    `json:"replaySize,omitempty"`
	Events      int    `json:"events,omitempty"`
	OnlineSteps int    `json:"onlineSteps,omitempty"`
	LearnSteps  int    `json:"learnSteps,omitempty"`
	Recommends  int    `json:"recommends,omitempty"`
	QSum        string `json:"qsum,omitempty"`
	// Role reports the daemon's replication role ("primary" or
	// "follower") on state/learnstate/promote responses.
	Role string `json:"role,omitempty"`
}

// server owns the environment state and the trained Jarvis system. All
// state mutations are serialized by mu; connections are handled
// concurrently and tracked so Close can terminate idle clients.
type server struct {
	cfg  serverConfig
	home *smarthome.FullHome
	sys  *jarvis.System
	// assets is the replay.Build product the server was assembled from,
	// retained so a following standby can adopt shipped snapshots through
	// the same RestoreSnapshot path boot restore uses.
	assets *replay.Assets

	mu         sync.Mutex
	state      env.State
	startOfDay time.Time
	violations int

	// Online-learning progression, all guarded by mu: events applied,
	// transitions accepted into the learner, learn steps actually run,
	// recommendations served, and requests shed by admission control.
	eventsIngested   int
	onlineSteps      int
	learnSteps       int
	recommendsServed int
	shedEvents       int
	shedRecommends   int

	// walSpans tracks the first/last kind-local sequence number currently
	// in the journal (guarded by mu; nil when empty or WAL disabled) —
	// surfaced by /healthz so an operator can see what a crash would
	// replay.
	walSpans map[string]walSpan

	// inflight counts requests currently being served; admission control
	// sheds work above the configured thresholds. Atomic because it is
	// bumped before dispatch takes mu.
	inflight atomic.Int64

	// store is the checkpoint generation store (nil when checkpointing is
	// disabled or the store could not be opened).
	store *checkpoint.Store
	// wal is the event/transition journal (nil when disabled).
	wal *wal.Log
	// watchdog monitors the agent for divergence and rolls Q back to the
	// newest valid generation; always attached, but only able to restore
	// when the store is available.
	watchdog *rl.Watchdog

	ln     net.Listener
	wg     sync.WaitGroup
	stop   chan struct{}
	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// debug/debugLn serve the observability endpoints (debug.go); nil when
	// cfg.DebugAddr is empty.
	debug   *http.Server
	debugLn net.Listener

	// decisions is the structured decision log (replay.DecisionLog, opened
	// via decision.go); nil when cfg.DecisionLogPath is empty.
	decisions *replay.DecisionLog

	// health/slo/shadow are the policy-health subsystem (health.go): the
	// alert engine and SLO tracker run on the health ticker; the shadow
	// evaluator runs on the learn-step cadence. All nil when
	// cfg.AlertingOff (shadow additionally needs WAL + checkpoint).
	health *health.Engine
	slo    *health.Tracker
	shadow *health.Shadow

	// mUnsafeByDevice holds the jarvisd.audit.denials{device} children,
	// indexed by device index — the audit path's per-device denial count
	// is a slice index plus an atomic add.
	mUnsafeByDevice []*telemetry.Counter

	// ts is the daemon's on-disk metric history (nil when cfg.TSDBDir is
	// empty): the health ticker appends one snapshot per TSInterval, the
	// SLO tracker reads its window edges from it, and /debug/tsdb serves
	// range queries over it.
	ts *tsdb.DB

	// tracer samples request traces (disabled, never nil, when
	// cfg.TraceSample <= 0).
	tracer *trace.Tracer
	// filter is the trained benign-anomaly ANN (nil unless
	// cfg.AnomalyFilter).
	filter *anomaly.Filter

	// lastCkpt is the unix-ns time of the last successful checkpoint save
	// or restore (0 = never). Atomic because /healthz reads it off-lock.
	lastCkpt atomic.Int64

	// Replication (follow.go). following flips true while the daemon is a
	// hot standby and back to false on promotion; both serving codecs gate
	// writes on it. followStop ends the follow loop (closed exactly once,
	// via followStopOnce, by promotion request or shutdown); replica is
	// the stream client while following; promoteRequested distinguishes an
	// operator promote from a shutdown when the loop exits cleanly.
	following        atomic.Bool
	followStop       chan struct{}
	followStopOnce   sync.Once
	promoteRequested atomic.Bool
	replica          *replica.Follower
	// replicaReads counts read-only recommendations served while
	// following (guarded by mu); snapshotGen numbers outgoing replication
	// snapshots on the primary side.
	replicaReads int
	snapshotGen  atomic.Uint64
	// promotedAt is the unix-ns time of promotion (0 = never promoted, or
	// started as a primary).
	promotedAt atomic.Int64

	// restored reports whether startup served from a checkpoint instead of
	// training.
	restored bool

	// nextScratch is the recommend cross-check's transition destination
	// buffer (guarded by mu) — keeps the steady-state recommend path free
	// of per-request state allocations.
	nextScratch env.State

	// wireState/wireAction are the binary codec's response scratch buffers
	// (guarded by mu): state IDs and per-device action IDs are copied here
	// so binary responses never allocate at steady state.
	wireState  []uint8
	wireAction []int16
}

// replayConfig maps the daemon configuration onto the replay engine's
// learning configuration. The daemon builds its serving assets through
// replay.Build with exactly this value, so an offline replay (or a
// restarted daemon) constructing the same Config reproduces the same
// assets by definition.
func replayConfig(cfg serverConfig) replay.Config {
	return replay.Config{
		Seed:             cfg.Seed,
		LearningDays:     cfg.LearningDays,
		Episodes:         cfg.Episodes,
		OnlineTrainEvery: cfg.OnlineTrainEvery,
		AnomalyFilter:    cfg.AnomalyFilter,
		UseDNN:           cfg.UseDNN,
		Logf:             cfg.Logf,
	}
}

func newServer(cfg serverConfig) (*server, error) {
	cfg = cfg.withDefaults()
	// The deterministic learning phase is shared with the offline replay
	// engine: both build the same assets from the same Config.
	assets, err := replay.Build(replayConfig(cfg))
	if err != nil {
		return nil, err
	}
	s := &server{
		cfg:        cfg,
		home:       assets.Home,
		sys:        assets.Sys,
		assets:     assets,
		state:      assets.Home.InitialState(),
		startOfDay: time.Now().Truncate(24 * time.Hour),
		stop:       make(chan struct{}),
		conns:      make(map[net.Conn]struct{}),
		tracer:     trace.New(cfg.TraceRing),
		filter:     assets.Sys.Filter(),
		followStop: make(chan struct{}),
	}
	s.tracer.SetSeed(uint64(cfg.Seed))
	s.tracer.SetSampleEvery(cfg.TraceSample)

	// Resolve the per-device audit-denial children up front: device names
	// are fixed for the life of the environment, so the unsafe paths index
	// a slice instead of interning labels per event.
	devs := assets.Home.Env.Devices()
	s.mUnsafeByDevice = make([]*telemetry.Counter, len(devs))
	for i, d := range devs {
		s.mUnsafeByDevice[i] = mAuditDenialsVec.With(d.Name())
	}

	if cfg.DecisionLogPath != "" {
		dl, err := openDecisionLog(cfg.DecisionLogPath, cfg.DecisionLogMaxBytes, cfg.DecisionLogKeep)
		if err != nil {
			return nil, fmt.Errorf("decision log: %w", err)
		}
		s.decisions = dl
	}

	if cfg.CheckpointPath != "" {
		st, err := openStore(cfg)
		if err != nil {
			// Checkpointing is a durability feature, not a liveness one:
			// run without it rather than refusing to start.
			cfg.Logf("jarvisd: checkpoint store unavailable (%v); running without checkpoints", err)
		}
		s.store = st
	}
	if s.store != nil {
		switch err := s.restoreCheckpoint(assets); {
		case err == nil:
			s.restored = true
			mCkptRestores.Inc()
			s.lastCkpt.Store(time.Now().UnixNano())
			cfg.Logf("jarvisd: restored trained state from %s (%d generations on disk)",
				cfg.CheckpointPath, len(s.store.Generations()))
		default:
			// Corrupt, missing, or mismatched checkpoint: fall back to
			// fresh training rather than crashing.
			mCkptRestoreFailures.Inc()
			cfg.Logf("jarvisd: checkpoint unavailable (%v); training fresh", err)
		}
	}
	if !s.restored {
		if err := assets.Train(); err != nil {
			return nil, err
		}
		if s.store != nil {
			if err := s.saveCheckpoint(); err != nil {
				cfg.Logf("jarvisd: checkpoint save failed: %v", err)
			}
		}
	}

	// The watchdog is always attached — divergence detection costs one
	// scan the agent already makes — but it can only roll back when a
	// generation store exists.
	var restoreFn func() error
	if s.store != nil {
		restoreFn = s.restoreNewestQ
	}
	s.watchdog = s.sys.Agent().AttachWatchdog(rl.WatchdogConfig{
		Restore: restoreFn,
		Logf:    cfg.Logf,
	})

	// The WAL opens last: replay applies on top of whatever base state the
	// restore/train decision produced.
	if cfg.WALDir != "" {
		s.openWAL()
	}

	// Compile the serving policy after every startup mutation (restore,
	// training, WAL replay) has landed — the table is built once here and
	// then kept fresh by invalidation hooks on the learn/rollback paths.
	if !cfg.CompiledOff {
		if err := s.sys.EnableCompiledPolicy(&s.mu, compiled.Options{}); err != nil {
			// Advisory: the daemon serves through the agent path either way.
			cfg.Logf("jarvisd: compiled policy unavailable (%v); serving via agent", err)
		} else {
			st := s.sys.CompiledPolicy().Stats()
			cfg.Logf("jarvisd: compiled policy ready (%d entries, %d distinct decisions, built in %dms)",
				st.Entries, st.PaletteSize, st.BuildMs)
		}
	}

	// The health subsystem starts last so its first snapshot already sees
	// the fully assembled daemon (restored counters, replayed WAL).
	if err := s.initHealth(); err != nil {
		return nil, fmt.Errorf("health subsystem: %w", err)
	}

	// A standby enters follower mode only after the whole startup sequence
	// above: it begins from the same deterministic base a primary with this
	// configuration would, then converges onto the primary's state through
	// the shipped snapshot and stream.
	if cfg.FollowAddr != "" {
		s.startFollowing()
	}
	return s, nil
}

func (s *server) tableSize() int { return s.sys.SafeTable().Len() }

// listen starts accepting connections, plus the debug listener when
// configured.
func (s *server) listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	if s.cfg.DebugAddr != "" {
		if err := s.startDebug(s.cfg.DebugAddr); err != nil {
			ln.Close()
			s.ln = nil
			return fmt.Errorf("debug listener: %w", err)
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound address.
func (s *server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listeners, terminates every live connection (including
// idle clients blocked in a read), waits for the handlers to drain, writes
// a final checkpoint, and flushes the decision log.
func (s *server) Close() error {
	close(s.stop)
	// End the follow loop (no-op on a primary); shutdown is not a
	// promotion, so promoteRequested stays false and the loop just exits.
	s.followStopOnce.Do(func() { close(s.followStop) })
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	if s.debug != nil {
		// http.Server.Close shuts the debug listener and its connections,
		// letting the Serve goroutine (counted in s.wg) exit.
		if derr := s.debug.Close(); derr != nil && err == nil {
			err = derr
		}
	}
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	if s.health != nil {
		// The health ticker and any in-flight shadow run are drained by
		// wg.Wait above, so closing the alert log here races nothing.
		if herr := s.health.Close(); herr != nil {
			s.cfg.Logf("jarvisd: alert log close failed: %v", herr)
			if err == nil {
				err = herr
			}
		}
	}
	if s.store != nil {
		if cerr := s.saveCheckpoint(); cerr != nil {
			s.cfg.Logf("jarvisd: final checkpoint failed: %v", cerr)
			if err == nil {
				err = cerr
			}
		}
	}
	if s.wal != nil {
		// After the final checkpoint the journal is already reset; closing
		// just syncs the empty active segment.
		if werr := s.wal.Close(); werr != nil {
			s.cfg.Logf("jarvisd: wal close failed: %v", werr)
			if err == nil {
				err = werr
			}
		}
	}
	if s.decisions != nil {
		if derr := s.decisions.Close(); derr != nil {
			s.cfg.Logf("jarvisd: decision log close failed: %v", derr)
			if err == nil {
				err = derr
			}
		}
	}
	if s.ts != nil {
		// The append ticker is drained by wg.Wait above; Close syncs the
		// active segment so the final interval survives a restart.
		if terr := s.ts.Close(); terr != nil {
			s.cfg.Logf("jarvisd: tsdb close failed: %v", terr)
			if err == nil {
				err = terr
			}
		}
	}
	return err
}

func (s *server) trackConn(c net.Conn, add bool) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if add {
		s.conns[c] = struct{}{}
	} else {
		delete(s.conns, c)
	}
	mConnsActive.SetInt(int64(len(s.conns)))
}

// acceptLoop accepts until the listener closes. Transient accept errors
// (timeouts, EMFILE-style temporary conditions) are retried with capped
// exponential backoff instead of killing the loop.
func (s *server) acceptLoop() {
	defer s.wg.Done()
	const (
		minBackoff = 5 * time.Millisecond
		maxBackoff = time.Second
	)
	var delay time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return
			default:
			}
			// A closed listener is the normal shutdown signal (net wraps it,
			// so errors.Is, not equality); exit silently rather than logging
			// a spurious failure when Close races the stop channel.
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if isTransient(err) {
				mAcceptRetries.Inc()
				if delay == 0 {
					delay = minBackoff
				} else if delay *= 2; delay > maxBackoff {
					delay = maxBackoff
				}
				s.cfg.Logf("jarvisd: transient accept error (retrying in %v): %v", delay, err)
				select {
				case <-time.After(delay):
					continue
				case <-s.stop:
					return
				}
			}
			mAcceptErrors.Inc()
			s.cfg.Logf("jarvisd: accept failed: %v", err)
			return
		}
		delay = 0
		mConnsAccepted.Inc()
		s.trackConn(conn, true)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.trackConn(conn, false)
			defer conn.Close()
			defer func() {
				// One misbehaving client must not take the daemon down.
				if r := recover(); r != nil {
					s.cfg.Logf("jarvisd: connection handler panicked: %v", r)
				}
			}()
			s.serve(conn)
		}()
	}
}

// isTransient reports whether an accept error is worth retrying.
func isTransient(err error) bool {
	ne, ok := err.(net.Error)
	if !ok {
		return false
	}
	if ne.Timeout() {
		return true
	}
	// Temporary is deprecated for the general case but remains the only
	// signal for retryable accept conditions like EMFILE/ECONNABORTED.
	if te, ok := err.(interface{ Temporary() bool }); ok && te.Temporary() {
		return true
	}
	return false
}

// serve negotiates the codec with a one-byte peek — wire.Magic opens the
// binary protocol (binary.go), replica.Magic opens a replication stream
// to a follower (follow.go), anything else (JSON's '{') keeps the
// original JSON-lines loop — so old clients are untouched and new ones
// get length-prefixed frames and batch scoring.
func (s *server) serve(conn net.Conn) {
	if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
		return
	}
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	switch first[0] {
	case wire.Magic:
		mWireBinary.Inc()
		s.serveBinary(conn, br)
	case replica.Magic:
		s.serveReplication(conn, br)
	default:
		mWireJSON.Inc()
		s.serveJSON(conn, br)
	}
}

func (s *server) serveJSON(conn net.Conn, br *bufio.Reader) {
	dec := json.NewDecoder(br)
	enc := json.NewEncoder(conn)
	for {
		// A connection may not sit silent forever: the read deadline turns
		// an abandoned client into a closed connection instead of a leaked
		// goroutine.
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
			return
		}
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
			return
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		select {
		case <-s.stop:
			return
		default:
		}
	}
}

// minuteOfDay maps wall time onto the episode's time instance (or the
// pinned minute when the daemon runs in deterministic-replay mode).
func (s *server) minuteOfDay(now time.Time) int {
	if s.cfg.FixedMinute > 0 {
		return s.cfg.FixedMinute % smarthome.InstancesPerDay
	}
	m := int(now.Sub(s.startOfDay).Minutes()) % smarthome.InstancesPerDay
	if m < 0 {
		m += smarthome.InstancesPerDay
	}
	return m
}

// handle counts and times one request, then dispatches it. The inflight
// gauge — requests admitted but not yet answered — is the queue depth
// admission control sheds against. Sampled requests get a root span named
// after the op (opSpanNames, telemetry.go) that the whole pipeline threads
// through; unsampled requests carry a nil span at zero cost.
func (s *server) handle(req request) response {
	depth := s.inflight.Add(1)
	defer s.inflight.Add(-1)
	mQueueDepth.SetInt(depth)
	if c, ok := mRequests[req.Op]; ok {
		c.Inc()
	} else {
		mRequestsUnknown.Inc()
	}
	sp := s.tracer.Start(opSpanName(req.Op))
	if sp != nil {
		sp.AnnotateInt("depth", depth)
		defer sp.End()
	}
	if !mRequestLatency.Enabled() {
		return s.dispatch(req, depth, sp)
	}
	t0 := time.Now()
	resp := s.dispatch(req, depth, sp)
	mRequestLatency.Observe(time.Since(t0))
	return resp
}

// shedLearning reports whether the learning half of an event should be
// shed at this queue depth; shedRecommend likewise for recommendations.
// Learning sheds first (at half the threshold): the audit check and the
// state transition are the safety surface and always run, while the
// learner can catch up from later traffic. Recommendations shed last —
// they are the product — and reject loudly with a retry hint.
func (s *server) shedLearning(depth int64) bool {
	return s.cfg.MaxQueue > 0 && depth > int64(s.cfg.MaxQueue)/2
}

func (s *server) shedRecommend(depth int64) bool {
	return s.cfg.MaxQueue > 0 && depth > int64(s.cfg.MaxQueue)
}

func (s *server) dispatch(req request, depth int64, sp *trace.Span) response {
	// Under admission-control pressure the wait for the state lock IS the
	// queue; a sampled trace shows it as its own span.
	qw := sp.Child("queue.wait")
	s.mu.Lock()
	qw.End()
	defer s.mu.Unlock()
	return s.dispatchLocked(req, depth, sp)
}

func (s *server) dispatchLocked(req request, depth int64, sp *trace.Span) response {
	e := s.home.Env
	minute := s.minuteOfDay(time.Now())

	switch req.Op {
	case "state":
		return response{OK: true, State: stateNames(e, s.state), Minute: minute,
			Violations: s.violations, Role: s.role()}

	case "event":
		if s.following.Load() {
			return response{Error: errFollowerReadOnly}
		}
		di, ok := e.DeviceIndex(req.Device)
		if !ok {
			return response{Error: fmt.Sprintf("unknown device %q", req.Device)}
		}
		act, ok := e.Device(di).ActionID(req.Action)
		if !ok {
			return response{Error: fmt.Sprintf("device %q has no action %q", req.Device, req.Action)}
		}
		unsafe, err := s.applyEvent(sp, depth, minute, di, act)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true, State: stateNames(e, s.state), Unsafe: unsafe, Minute: minute, Violations: s.violations}

	case "recommend":
		if s.shedRecommend(depth) {
			s.shedRecommends++
			mShedRecommends.Inc()
			return response{Error: "overloaded: recommendation shed", Busy: true,
				RetryAfterMs: 250, Minute: minute}
		}
		if s.following.Load() {
			// Read-only replica serving: evaluate against the replica Q
			// without journaling or counting a served recommendation — the
			// decision stream is the primary's to record.
			d, err := s.replicaRecommend(sp, minute)
			if err != nil {
				return response{Error: err.Error()}
			}
			return response{OK: true, Action: e.FormatAction(d.Action), Minute: minute,
				Q: d.Value, Degraded: s.sys.DegradedRecommendations(), Role: roleFollower}
		}
		d, err := s.recommendOne(sp, minute)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true, Action: e.FormatAction(d.Action), Minute: minute,
			Q: d.Value, Degraded: s.sys.DegradedRecommendations()}

	case "violations":
		return response{OK: true, Violations: s.violations, Minute: minute}

	case "checkpoint":
		if s.following.Load() {
			return response{Error: errFollowerReadOnly}
		}
		if s.store == nil {
			return response{Error: "daemon started without -checkpoint"}
		}
		if err := s.saveCheckpointLocked(); err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true, Minute: minute}

	case "learnstate":
		fp, err := s.sys.QFingerprint()
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{OK: true, Minute: minute, Violations: s.violations,
			ReplaySize:  s.sys.Agent().ReplayBuffer().Len(),
			Events:      s.eventsIngested,
			OnlineSteps: s.onlineSteps,
			LearnSteps:  s.learnSteps,
			Recommends:  s.recommendsServed,
			QSum:        fp,
			Role:        s.role(),
		}

	case "promote":
		if err := s.requestPromote(); err != nil {
			return response{Error: err.Error(), Role: s.role()}
		}
		return response{OK: true, Minute: minute, Role: s.role()}
	}
	return response{Error: fmt.Sprintf("unknown op %q", req.Op)}
}

// applyEvent is the codec-independent event op: audit against P_safe,
// apply the transition, journal, and (when not shed) feed the learner.
// Callers resolve the device index and action ID; both codecs build their
// responses from the post-transition server state.
func (s *server) applyEvent(sp *trace.Span, depth int64, minute, di int, act device.ActionID) (unsafe bool, err error) {
	e := s.home.Env
	a := env.NoOp(e.K())
	a[di] = act
	next, err := e.Transition(s.state, a)
	if err != nil {
		return false, err
	}
	table := s.sys.SafeTable()
	unsafe = !table.SafeTransitionTraced(sp, e.StateKey(s.state), e.StateKey(next), a)
	if unsafe {
		s.violations++
		mEventsUnsafe.Inc()
		s.mUnsafeByDevice[di].Inc()
	}
	prev := s.state
	s.state = next
	s.eventsIngested++
	s.journal(sp, replay.Record{K: replay.KindEvent, N: s.eventsIngested, M: minute, D: di, A: act, U: unsafe})
	// The audit check above is never shed; under pressure only the
	// learning ingestion below is dropped.
	if s.shedLearning(depth) {
		s.shedEvents++
		mShedEvents.Inc()
	} else {
		li := sp.Child("learn.ingest")
		s.journal(li, replay.Record{K: replay.KindTransition, N: s.onlineSteps + 1, M: minute, D: di, A: act, S: prev})
		s.ingestTransition(li, prev, a, minute)
		li.End()
	}
	if s.decisions != nil {
		verdict := "safe"
		if unsafe {
			verdict = "unsafe"
		}
		s.logDecision(sp, decisionRecord{
			Kind: "event", Minute: minute,
			State:   stateNames(e, s.state),
			Action:  e.FormatAction(a),
			Verdict: verdict,
		})
	}
	return unsafe, nil
}

// recommendOne is the codec-independent recommend op (admission control is
// the caller's): evaluate the policy, cross-check against P_safe, score
// the anomaly filter, and journal the served recommendation.
func (s *server) recommendOne(sp *trace.Span, minute int) (jarvis.Decision, error) {
	e := s.home.Env
	d, err := s.sys.RecommendDecisionTraced(sp, s.state, minute)
	if err != nil {
		return jarvis.Decision{}, err
	}
	verdict := "safe"
	if d.Degraded {
		verdict = "degraded"
	}
	var score float64
	if s.nextScratch == nil {
		s.nextScratch = make(env.State, e.K())
	}
	if terr := e.TransitionInto(s.nextScratch, s.state, d.Action); terr == nil {
		// Cross-check the recommendation against P_safe before handing
		// it out. The constrained agent only proposes whitelisted
		// transitions, so a deny here means the table and the optimizer
		// have drifted apart — worth a loud verdict in the audit log.
		next := s.nextScratch
		if !s.sys.SafeTable().SafeTransitionTraced(sp, e.StateKey(s.state), e.StateKey(next), d.Action) {
			verdict = "unsafe"
		}
		if s.filter != nil {
			// Score the transition through the benign-anomaly ANN —
			// the daemon's answer to "how unusual is the action I am
			// about to suggest".
			score = s.filter.ScoreTraced(sp, env.Transition{
				From: s.state, Act: d.Action, To: next,
				Instance: minute,
				At:       s.startOfDay.Add(time.Duration(minute) * time.Minute),
			})
		}
	}
	// Journal the served recommendation: recovery only bumps the
	// counter, but the offline replay engine re-executes the policy at
	// this point in the stream to regenerate (or counterfactually
	// rewrite) the decision below.
	s.recommendsServed++
	s.journal(sp, replay.Record{K: replay.KindRecommend, N: s.recommendsServed, M: minute})
	if s.decisions != nil {
		s.logDecision(sp, decisionRecord{
			Kind: "recommend", Minute: minute,
			State:    stateNames(e, s.state),
			Action:   e.FormatAction(d.Action),
			Q:        d.Value,
			Anomaly:  score,
			Degraded: d.Degraded,
			Verdict:  verdict,
		})
	}
	return d, nil
}

// logDecision stamps and appends one record to the decision log (no-op
// when the log is disabled). Log failures are reported, never fatal: an
// unwritable audit trail must not take recommendations down with it. A
// sampled request's trace ID is stamped into the record — the join key
// between the decision log and /debug/traces.
func (s *server) logDecision(sp *trace.Span, rec decisionRecord) {
	if s.decisions == nil {
		return
	}
	rec.UnixNs = time.Now().UnixNano()
	if id := sp.TraceID(); id != 0 {
		rec.Trace = trace.IDString(id)
	}
	if err := s.decisions.Record(rec); err != nil {
		s.cfg.Logf("jarvisd: decision log write failed: %v", err)
		return
	}
	mDecisionsLogged.Inc()
}

func stateNames(e *env.Environment, s env.State) []string {
	out := make([]string, len(s))
	for i, st := range s {
		out[i] = e.Device(i).Name() + "=" + e.Device(i).StateName(st)
	}
	return out
}
