package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"jarvis/internal/replay"
	"jarvis/internal/rl"
)

// feedMixedTraffic drives n scripted events with one recommendation after
// every 4th — the golden traffic pattern the replay tests regenerate
// offline. Returns how many recommendations were served.
func feedMixedTraffic(t *testing.T, s *server, n int) int {
	t.Helper()
	recs := 0
	for i := 0; i < n; i++ {
		req := eventScript[i%len(eventScript)]
		if resp := s.handle(req); resp.Error != "" {
			t.Fatalf("event %d (%s %s): %s", i, req.Device, req.Action, resp.Error)
		}
		if i%4 == 3 {
			if resp := s.handle(request{Op: "recommend"}); !resp.OK {
				t.Fatalf("recommend after event %d: %s", i, resp.Error)
			}
			recs++
		}
	}
	return recs
}

// verifySource maps a daemon configuration onto the replay engine's view
// of its recorded artifacts.
func verifySource(cfg serverConfig) replay.Source {
	return replay.Source{
		WALDir:           cfg.WALDir,
		CheckpointPath:   cfg.CheckpointPath,
		CheckpointRetain: cfg.CheckpointRetain,
	}
}

// TestReplayVerifyReproducesDecisionLog is the golden determinism test:
// record a daemon's day — events, learning, recommendations, decision-log
// rotation — then replay the WAL offline and require the regenerated
// decision stream to match the recorded log bit for bit, both through the
// library API and through the daemon's own /debug/replay endpoint.
func TestReplayVerifyReproducesDecisionLog(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	cfg.DebugAddr = "127.0.0.1:0"
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	if err := srv.listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srv.Close()

	const events = 48
	recs := feedMixedTraffic(t, srv, events)
	// The verification must run against the recorded artifacts BEFORE
	// Close: shutdown saves a final checkpoint and resets the WAL.
	if err := srv.decisions.Sync(); err != nil {
		t.Fatalf("decision log sync: %v", err)
	}
	// The small size cap must actually have rotated the log, or the
	// cross-file read path is untested.
	rotated, err := filepath.Glob(cfg.DecisionLogPath + ".*")
	if err != nil || len(rotated) == 0 {
		t.Fatalf("no rotated decision-log files (err %v); the test no longer covers rotation", err)
	}

	rep, err := replay.Verify(replay.VerifyOptions{
		Config:      replayConfig(cfg),
		Source:      verifySource(cfg),
		DecisionLog: cfg.DecisionLogPath,
	})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !rep.Match {
		d := rep.Divergence
		t.Fatalf("replay diverged at index %d (seq %d, %s): %s\n  recorded action=%q q=%v verdict=%q\n  replayed action=%q q=%v verdict=%q",
			d.Index, d.Seq, d.Kind, d.Reason,
			d.RecordedAction, d.RecordedQ, d.RecordedVerdict,
			d.ReplayedAction, d.ReplayedQ, d.ReplayedVerdict)
	}
	if want := events + recs; rep.Compared != want {
		t.Errorf("compared %d decisions, want %d (%d events + %d recommendations)", rep.Compared, want, events, recs)
	}
	if rep.Replayed.Events != events || rep.Replayed.Recommends != recs {
		t.Errorf("replayed %d events / %d recommends, daemon served %d / %d",
			rep.Replayed.Events, rep.Replayed.Recommends, events, recs)
	}
	if !rep.Restored {
		t.Error("replay trained fresh; it should seed from the daemon's boot checkpoint")
	}
	if rep.Replayed.LearnSteps == 0 {
		t.Error("replay ran no learn steps; the traffic proves nothing about learning determinism")
	}

	// The same audit through the daemon itself: /debug/replay re-verifies
	// the live WAL + decision log and must agree.
	hres, err := http.Get(fmt.Sprintf("http://%s/debug/replay", srv.DebugAddr()))
	if err != nil {
		t.Fatalf("GET /debug/replay: %v", err)
	}
	defer hres.Body.Close()
	var hrep replay.VerifyReport
	if err := json.NewDecoder(hres.Body).Decode(&hrep); err != nil {
		t.Fatalf("decode /debug/replay: %v", err)
	}
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("/debug/replay = %d, want 200; report: %+v", hres.StatusCode, hrep)
	}
	if !hrep.Match || hrep.Compared != rep.Compared {
		t.Errorf("/debug/replay disagrees with the direct verify: %+v", hrep)
	}
}

// TestReplayWhatIfPerturbedPolicyDiverges records a run, then counter-
// factually substitutes a policy trained under a different seed. The
// what-if report must show a non-zero action divergence whose first
// divergence is a recommendation (events replay recorded actions, so only
// the policy's own decisions can differ when just Q is swapped).
func TestReplayWhatIfPerturbedPolicyDiverges(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	recs := feedMixedTraffic(t, srv, 48)
	// No Close: the WAL must survive as recorded (Close checkpoints and
	// resets it). The leaked daemon holds no listeners.

	// The perturbed policy: the baseline Q with one row rewritten so that,
	// at the state and minute every recorded recommendation replays at,
	// the argmax provably lands on a different action. (A merely
	// differently-seeded policy can happen to agree at the handful of
	// states this traffic visits, which would make the test vacuous.)
	pa, err := replay.Build(replayConfig(cfg))
	if err != nil {
		t.Fatalf("perturbed build: %v", err)
	}
	if err := pa.Train(); err != nil {
		t.Fatalf("perturbed train: %v", err)
	}
	recState := pa.Home.InitialState() // the event script cycles back here
	base, err := pa.Sys.RecommendDecision(recState, 600)
	if err != nil {
		t.Fatalf("baseline recommendation: %v", err)
	}
	baseAction := pa.Home.Env.FormatAction(base.Action)
	tq, ok := pa.Sys.Agent().Q().(*rl.TableQ)
	if !ok {
		t.Fatalf("agent backend is %T, want *rl.TableQ", pa.Sys.Agent().Q())
	}
	width := len(tq.Q(recState, 600))
	noop := pa.Sys.Agent().Minis().NoOpIndex()
	diverted := false
	for m := 0; m < width && !diverted; m++ {
		if m == noop {
			continue // inflating "do nothing" can only entrench the baseline
		}
		if _, err := tq.Update([]rl.Experience{{S: recState, T: 600, Minis: []int{m}}},
			[]float64{1e6}); err != nil {
			t.Fatalf("boost mini %d: %v", m, err)
		}
		d, err := pa.Sys.RecommendDecision(recState, 600)
		if err != nil {
			t.Fatalf("perturbed recommendation: %v", err)
		}
		diverted = pa.Home.Env.FormatAction(d.Action) != baseAction
	}
	if !diverted {
		t.Fatal("could not construct a policy that recommends differently at the recorded state")
	}
	var q bytes.Buffer
	if err := pa.Sys.SaveQ(&q); err != nil {
		t.Fatalf("save perturbed q: %v", err)
	}

	rep, err := replay.WhatIf(replay.WhatIfOptions{
		Config:  replayConfig(cfg),
		Source:  verifySource(cfg),
		At:      0,
		PolicyQ: replay.QFromPolicyFile(q.Bytes()),
	})
	if err != nil {
		t.Fatalf("what-if: %v", err)
	}
	if rep.Compared != 48+recs {
		t.Errorf("compared %d decisions, want %d", rep.Compared, 48+recs)
	}
	if rep.ActionDivergences == 0 {
		t.Fatal("perturbed policy produced an identical decision stream; the counterfactual shows nothing")
	}
	if rep.ActionDivergences > recs {
		t.Errorf("%d action divergences from only %d recommendations: recorded events diverged, which a Q-only swap cannot cause",
			rep.ActionDivergences, recs)
	}
	if rep.FirstDivergenceSeq < 0 || rep.Divergence == nil {
		t.Fatalf("divergence reported without a first-divergence location: %+v", rep)
	}
	if rep.Divergence.Seq != rep.FirstDivergenceSeq {
		t.Errorf("FirstDivergenceSeq %d != Divergence.Seq %d", rep.FirstDivergenceSeq, rep.Divergence.Seq)
	}
	if rep.Divergence.Kind != "recommend" {
		t.Errorf("first divergence is a %q decision, want recommend (events replay recorded actions)", rep.Divergence.Kind)
	}
	if rep.Divergence.RecordedAction == rep.Divergence.ReplayedAction &&
		rep.Divergence.RecordedVerdict == rep.Divergence.ReplayedVerdict {
		t.Errorf("reported divergence does not diverge: %+v", rep.Divergence)
	}
	wantRate := float64(rep.ActionDivergences) / float64(rep.Compared)
	if math.Abs(rep.ActionDivergenceRate-wantRate) > 1e-12 {
		t.Errorf("divergence rate %v, want %v", rep.ActionDivergenceRate, wantRate)
	}
	if math.IsNaN(rep.RewardDelta) || math.IsInf(rep.RewardDelta, 0) {
		t.Errorf("reward delta %v is not finite", rep.RewardDelta)
	}
	if rep.BaselineQ == "" || rep.VariantQ == "" || rep.BaselineQ == rep.VariantQ {
		t.Errorf("Q fingerprints baseline=%q variant=%q, want distinct non-empty", rep.BaselineQ, rep.VariantQ)
	}
}

// TestCheckpointStoreLossFallsBackToFreshTraining covers the daemon-level
// generation fallback: with the MANIFEST deleted, or with every
// generation file gone, a restarting daemon must train fresh — landing in
// the same state as its first boot — and keep serving.
func TestCheckpointStoreLossFallsBackToFreshTraining(t *testing.T) {
	damage := map[string]func(t *testing.T, dir string){
		"manifest-missing": func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, "ckpt", "MANIFEST")); err != nil {
				t.Fatal(err)
			}
		},
		"generations-deleted": func(t *testing.T, dir string) {
			gens, err := filepath.Glob(filepath.Join(dir, "ckpt", "jarvisd.ckpt.*"))
			if err != nil || len(gens) == 0 {
				t.Fatalf("no generation files to delete (err %v)", err)
			}
			for _, g := range gens {
				if err := os.Remove(g); err != nil {
					t.Fatal(err)
				}
			}
		},
	}
	for name, breakStore := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := durableConfig(dir)
			cfg.WALDir = "" // isolate the checkpoint path

			first, err := newServer(cfg)
			if err != nil {
				t.Fatalf("first boot: %v", err)
			}
			want := learnState(t, first)
			if err := first.Close(); err != nil {
				t.Fatalf("first close: %v", err)
			}

			breakStore(t, dir)

			second, err := newServer(cfg)
			if err != nil {
				t.Fatalf("reboot over damaged store: %v", err)
			}
			defer second.Close()
			if second.restored {
				t.Fatal("daemon claims a checkpoint restore from a damaged store")
			}
			// Fresh training is deterministic: the fallback daemon lands in
			// the first boot's exact state and serves.
			assertSameLearnState(t, want, learnState(t, second))
			if resp := second.handle(request{Op: "recommend"}); !resp.OK {
				t.Fatalf("fallback daemon cannot serve: %s", resp.Error)
			}
		})
	}
}
