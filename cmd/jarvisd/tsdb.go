package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"jarvis/internal/telemetry"
	"jarvis/internal/tsdb"
)

// The daemon's metric history (internal/tsdb) hangs off the health
// ticker: every TSInterval the loop appends one registry snapshot to the
// on-disk store, and the SLO tracker reads its window edges back out of
// it through this adapter. /debug/tsdb serves range queries over the
// same store, so an operator recomputing a burn rate with
// ?series=...&fn=delta gets the number /debug/slo published — both sides
// resolve the identical (EdgeBefore, Latest) pair.

// tsdbSource adapts the metric history to health.WindowSource.
type tsdbSource struct{ db *tsdb.DB }

func (t tsdbSource) Latest() (telemetry.Snapshot, bool) {
	p, ok := t.db.Latest()
	return pointSnapshot(p), ok
}

func (t tsdbSource) EdgeBefore(cutoffNs int64) (telemetry.Snapshot, bool) {
	p, ok := t.db.EdgeBefore(cutoffNs)
	return pointSnapshot(p), ok
}

func pointSnapshot(p tsdb.Point) telemetry.Snapshot {
	return telemetry.Snapshot{
		UnixNs:     p.TsNs,
		Counters:   p.Counters,
		Gauges:     p.Gauges,
		Histograms: p.Histograms,
	}
}

// initTSDB opens the metric history when configured. A store that cannot
// open degrades to the tracker's in-memory ring rather than refusing to
// start — metric history is derived data.
func (s *server) initTSDB() {
	if s.cfg.TSDBDir == "" {
		return
	}
	db, err := tsdb.Open(s.cfg.TSDBDir, tsdb.Options{})
	if err != nil {
		s.cfg.Logf("jarvisd: tsdb unavailable (%v); SLO window falls back to the in-memory ring", err)
		return
	}
	if rs := db.Recovery(); rs.TruncatedBytes > 0 {
		s.cfg.Logf("jarvisd: tsdb recovery truncated %d torn bytes", rs.TruncatedBytes)
	}
	s.ts = db
	s.slo.SetSource(tsdbSource{db})
}

// tsdbIndex is the parameterless /debug/tsdb body: store footprint plus
// every series the newest point carries.
type tsdbIndex struct {
	IntervalMs int64      `json:"intervalMs"`
	Stats      tsdb.Stats `json:"stats"`
	Series     []string   `json:"series"`
}

// tsdbQuery is the /debug/tsdb?series=... body. Value carries the scalar
// result (rate per second, delta, or quantile nanoseconds); Samples the
// raw per-point values for fn=raw.
type tsdbQuery struct {
	Series  string        `json:"series"`
	Fn      string        `json:"fn"`
	FromNs  int64         `json:"fromNs"`
	ToNs    int64         `json:"toNs"`
	OK      bool          `json:"ok"`
	Value   float64       `json:"value,omitempty"`
	Samples []tsdb.Sample `json:"samples,omitempty"`
}

// handleTSDB serves the metric history. Without ?series it returns the
// index; with it, one range query:
//
//	/debug/tsdb?series=NAME&fn=rate|delta|p50|p95|p99|raw&window=5m
//	/debug/tsdb?series=NAME&fn=delta&from=<unixNs>&to=<unixNs>
//
// from/to default to [now−window, now] (window default 5m). Labeled
// series are addressed by their flat snapshot name, URL-escaped, e.g.
// series=jarvisd.requests%7Bop%3D%22recommend%22%7D.
func (s *server) handleTSDB(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.ts == nil {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "tsdb disabled (start with -tsdb DIR)"})
		return
	}
	q := r.URL.Query()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")

	series := q.Get("series")
	if series == "" {
		doc := tsdbIndex{
			IntervalMs: s.cfg.TSInterval.Milliseconds(),
			Stats:      s.ts.Stats(),
			Series:     s.ts.SeriesNames(),
		}
		if err := enc.Encode(doc); err != nil {
			s.cfg.Logf("jarvisd: tsdb encode: %v", err)
		}
		return
	}

	window := 5 * time.Minute
	if ws := q.Get("window"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d <= 0 {
			httpBadRequest(w, enc, "bad window %q", ws)
			return
		}
		window = d
	}
	now := time.Now().UnixNano()
	toNs, err := nsParam(q.Get("to"), now)
	if err != nil {
		httpBadRequest(w, enc, "bad to %q", q.Get("to"))
		return
	}
	fromNs, err := nsParam(q.Get("from"), toNs-window.Nanoseconds())
	if err != nil {
		httpBadRequest(w, enc, "bad from %q", q.Get("from"))
		return
	}

	fn := q.Get("fn")
	if fn == "" {
		fn = "raw"
	}
	resp := tsdbQuery{Series: series, Fn: fn, FromNs: fromNs, ToNs: toNs}
	switch fn {
	case "rate":
		resp.Value, resp.OK = s.ts.Rate(series, fromNs, toNs)
	case "delta":
		resp.Value, resp.OK = s.ts.Delta(series, fromNs, toNs)
	case "p50", "p95", "p99":
		qv := map[string]float64{"p50": 0.50, "p95": 0.95, "p99": 0.99}[fn]
		var ns int64
		ns, resp.OK = s.ts.QuantileOverTime(series, qv, fromNs, toNs)
		resp.Value = float64(ns)
	case "raw":
		resp.Samples = s.ts.Series(series, fromNs, toNs)
		resp.OK = len(resp.Samples) > 0
	default:
		httpBadRequest(w, enc, "unknown fn %q (want rate, delta, p50, p95, p99, or raw)", fn)
		return
	}
	if err := enc.Encode(resp); err != nil {
		s.cfg.Logf("jarvisd: tsdb encode: %v", err)
	}
}

// nsParam parses a unix-nanosecond query parameter, defaulting when
// absent.
func nsParam(v string, def int64) (int64, error) {
	if v == "" {
		return def, nil
	}
	return strconv.ParseInt(v, 10, 64)
}

func httpBadRequest(w http.ResponseWriter, enc *json.Encoder, format string, args ...any) {
	w.WriteHeader(http.StatusBadRequest)
	enc.Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
