package main

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"jarvis/internal/health"
	"jarvis/internal/replica"
	"jarvis/internal/rl"
	"jarvis/internal/telemetry"
)

// waitUntil polls cond until it returns true or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// getAlerts fetches and decodes /debug/alerts.
func getAlerts(t *testing.T, srv *server) alertsDocument {
	t.Helper()
	code, body := httpGet(t, srv, "/debug/alerts")
	if code != http.StatusOK {
		t.Fatalf("/debug/alerts status = %d: %s", code, body)
	}
	var doc alertsDocument
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/debug/alerts is not valid JSON: %v", err)
	}
	return doc
}

func hasFiring(doc alertsDocument, rule string) bool {
	for _, a := range doc.Firing {
		if a.Rule == rule {
			return true
		}
	}
	return false
}

// hasTransition reports whether the engine's history carries a rule
// transition into state — unlike the instantaneous Firing set, history
// cannot be missed by a poll that lands between fire and resolve.
func hasTransition(doc alertsDocument, rule, state string) bool {
	for _, tr := range doc.History {
		if tr.Rule == rule && tr.State == state {
			return true
		}
	}
	return false
}

// readAlertLog parses the JSONL alert log into transitions.
func readAlertLog(t *testing.T, path string) []health.Transition {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read alert log: %v", err)
	}
	var out []health.Transition
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		var tr health.Transition
		if err := json.Unmarshal([]byte(line), &tr); err != nil {
			t.Fatalf("alert log line %q: %v", line, err)
		}
		out = append(out, tr)
	}
	return out
}

// assertLoggedLifecycle requires the alert log to carry a firing record and
// a later resolved record for rule.
func assertLoggedLifecycle(t *testing.T, path, rule string) {
	t.Helper()
	firedAt, resolvedAt := -1, -1
	for i, tr := range readAlertLog(t, path) {
		if tr.Rule != rule {
			continue
		}
		switch tr.State {
		case "firing":
			if firedAt < 0 {
				firedAt = i
			}
		case "resolved":
			resolvedAt = i
		}
	}
	if firedAt < 0 || resolvedAt < 0 || resolvedAt < firedAt {
		t.Fatalf("alert log lifecycle for %q: firing at %d, resolved at %d, want firing then resolved", rule, firedAt, resolvedAt)
	}
}

// TestAlertSmokeHairTrigger is the CI alerting smoke (make alerts): a
// hair-trigger rule on request traffic must fire while traffic flows,
// surface in /debug/alerts and /healthz, resolve once traffic stops, and
// leave both lifecycle edges in the JSONL alert log.
func TestAlertSmokeHairTrigger(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "alerts.jsonl")
	const rule = "any-state-traffic"
	srv := startDebugTestServer(t, serverConfig{
		Seed: 1, LearningDays: 2, Episodes: 2,
		HealthInterval: 20 * time.Millisecond,
		AlertLogPath:   logPath,
		AlertRules: []health.Rule{{
			Name:   rule,
			Metric: `jarvisd.requests{op="state"}`,
			Delta:  true,
			Op:     ">", Value: 0,
			For: 1, ClearFor: 2,
			Description: "state requests arrived since the previous evaluation",
		}},
	})

	// Keep traffic flowing so every evaluation window sees a positive
	// delta, until the engine reports the alert firing.
	waitUntil(t, 10*time.Second, "hair-trigger alert to fire", func() bool {
		for i := 0; i < 3; i++ {
			if resp := srv.handle(request{Op: "state"}); !resp.OK {
				t.Fatalf("state: %+v", resp)
			}
		}
		return hasFiring(getAlerts(t, srv), rule)
	})

	// The firing alert must be visible on the health surface too.
	code, body := httpGet(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d with only an info-level alert: %s", code, body)
	}
	var h healthStatus
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("/healthz is not valid JSON: %v", err)
	}
	found := false
	for _, a := range h.AlertsFiring {
		found = found || a.Rule == rule
	}
	if !found {
		t.Fatalf("/healthz does not list the firing alert: %+v", h.AlertsFiring)
	}
	if len(h.SLOBurn) == 0 {
		t.Errorf("/healthz carries no SLO burn rates: %+v", h)
	}

	// Traffic stops; after ClearFor clean evaluations the alert resolves.
	waitUntil(t, 10*time.Second, "alert to resolve after traffic stops", func() bool {
		return !hasFiring(getAlerts(t, srv), rule)
	})
	assertLoggedLifecycle(t, logPath, rule)

	doc := getAlerts(t, srv)
	if doc.Stats.Fired < 1 || doc.Stats.Resolved < 1 || doc.Stats.Evaluations < 2 {
		t.Errorf("engine stats did not record the lifecycle: %+v", doc.Stats)
	}

	// /debug/slo serves the tracker's report on the same cadence.
	code, body = httpGet(t, srv, "/debug/slo")
	if code != http.StatusOK {
		t.Fatalf("/debug/slo status = %d: %s", code, body)
	}
	var rep health.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("/debug/slo is not valid JSON: %v", err)
	}
	if len(rep.Objectives) == 0 || rep.Samples == 0 {
		t.Errorf("/debug/slo report is empty: %+v", rep)
	}
}

// TestReplicationLagAlertSmoke: on a daemon started with -follow, the
// replication lag gauge must feed the replication-lag SLO and the built-in
// default rule must fire when the standby trails the primary past its lag
// budget — and resolve once it catches back up. The primary here is fake:
// a bare TCP listener speaking only heartbeats, whose advertised position
// the test moves at will.
func TestReplicationLagAlertSmoke(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var farAhead atomic.Bool
	farAhead.Store(true)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				var buf []byte
				for {
					var at replica.Counters
					if farAhead.Load() {
						// Far past any position the follower could hold:
						// lag ≈ 100000 records against a budget of 256.
						at = replica.Counters{Events: 100000}
					}
					buf = replica.AppendHeartbeat(buf[:0], at)
					if _, err := c.Write(buf); err != nil {
						return
					}
					select {
					case <-done:
						return
					case <-time.After(50 * time.Millisecond):
					}
				}
			}(conn)
		}
	}()

	logPath := filepath.Join(t.TempDir(), "alerts.jsonl")
	const rule = "replication-lag"
	srv := startDebugTestServer(t, serverConfig{
		Seed: 1, LearningDays: 2, Episodes: 2,
		HealthInterval: 20 * time.Millisecond,
		AlertLogPath:   logPath,
		FollowAddr:     ln.Addr().String(),
		PromoteAfter:   -1, // heartbeats flow, but never promote under the test
	})

	// The default rule set carries replication-lag; it must fire once the
	// burn rate has been over 1 for its For window.
	waitUntil(t, 15*time.Second, "replication-lag alert to fire", func() bool {
		return hasTransition(getAlerts(t, srv), rule, "firing")
	})

	// The gauge itself is exported, and the burn rate and replication role
	// surface on /healthz.
	if lag := telemetry.Default.Snapshot().Gauges["jarvisd.replica.lag.records"]; lag <= 0 {
		t.Errorf("jarvisd.replica.lag.records gauge = %v, want > 0 while trailing", lag)
	}
	_, body := httpGet(t, srv, "/healthz")
	var h healthStatus
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("/healthz is not valid JSON: %v", err)
	}
	if h.Role != roleFollower {
		t.Errorf("/healthz role = %q, want %q", h.Role, roleFollower)
	}
	if h.Replication == nil || !h.Replication.Connected {
		t.Errorf("/healthz replication block missing or disconnected: %+v", h.Replication)
	}
	if burn := h.SLOBurn[rule]; burn <= 1 {
		t.Errorf("/healthz sloBurn[%q] = %v, want > 1 while trailing", rule, burn)
	}

	// The fake primary drops back to the follower's position: lag reads
	// zero and the alert resolves on its ClearFor cadence.
	farAhead.Store(false)
	waitUntil(t, 15*time.Second, "replication-lag alert to resolve", func() bool {
		doc := getAlerts(t, srv)
		return hasTransition(doc, rule, "resolved") && !hasFiring(doc, rule)
	})
	assertLoggedLifecycle(t, logPath, rule)
}

// TestAlertsDisabled: with alerting off, the endpoints 404 and the request
// path never consults the engine.
func TestAlertsDisabled(t *testing.T) {
	srv := startDebugTestServer(t, serverConfig{
		Seed: 1, LearningDays: 2, Episodes: 2, AlertingOff: true,
	})
	for _, path := range []string{"/debug/alerts", "/debug/slo"} {
		if code, _ := httpGet(t, srv, path); code != http.StatusNotFound {
			t.Errorf("%s status = %d with alerting off, want 404", path, code)
		}
	}
	code, body := httpGet(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d: %s", code, body)
	}
	var h healthStatus
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("/healthz is not valid JSON: %v", err)
	}
	if h.AlertsFiring != nil || h.SLOBurn != nil || h.Shadow != nil {
		t.Errorf("/healthz carries health-subsystem fields with alerting off: %+v", h)
	}
}

// TestDriftAlertRollsBackAndResolves is the acceptance e2e: a deliberately
// corrupted live Q must raise the policy-drift alert within one shadow
// evaluation cycle, the alert's rollback arm must trip the watchdog into a
// checkpoint restore, and once the restored policy shadows cleanly the
// alert must resolve — with both edges in the alert log.
func TestDriftAlertRollsBackAndResolves(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.ShadowEvery = 2 // one evaluation per 8 scripted events
	cfg.HealthInterval = 25 * time.Millisecond
	// The corruption below must be observable through RecommendDecision
	// while it is being constructed; a compiled table would keep serving
	// the stale pre-poison decisions until invalidated.
	cfg.CompiledOff = true
	cfg.AlertLogPath = filepath.Join(dir, "alerts.jsonl")
	const rule = "policy-drift"
	cfg.AlertRules = []health.Rule{{
		Name:   rule,
		Metric: health.GaugeDivergenceRate,
		Op:     ">", Value: 0.5,
		For: 1, ClearFor: 1,
		Severity:    health.SeverityCritical,
		Rollback:    true,
		Description: "shadow evaluation diverges from the checkpoint trajectory",
	}}
	srv := startDebugTestServer(t, cfg)

	// Recorded recommendations are the shadow comparison's denominator:
	// lay some down, then wait for a completed clean evaluation so the
	// healthy baseline is established before the corruption.
	feedMixedTraffic(t, srv, 48)
	waitUntil(t, 30*time.Second, "a clean shadow evaluation", func() bool {
		feedEvents(t, srv, 8)
		doc := getAlerts(t, srv)
		return doc.Shadow != nil && doc.Shadow.Err == "" && doc.Shadow.Recommends > 0
	})
	if doc := getAlerts(t, srv); doc.Shadow.DivergenceRate > 0.5 {
		t.Fatalf("healthy daemon already over the drift threshold: %+v", doc.Shadow)
	}

	// Corrupt the live policy: rewrite the Q row at the state and minute
	// every recorded recommendation replays at (the event script cycles
	// back to the initial state; the minute is pinned) until the argmax
	// provably lands on a different action. 1e4 is finite and below the
	// watchdog's own divergence thresholds (worst-case TD loss 1e8 <
	// MaxLoss 1e9), so only the shadow evaluator can catch this — and it
	// survives many online TD updates eroding it before a capture lands.
	srv.mu.Lock()
	recState := srv.home.InitialState()
	base, err := srv.sys.RecommendDecision(recState, 600)
	if err != nil {
		srv.mu.Unlock()
		t.Fatalf("baseline recommendation: %v", err)
	}
	baseAction := srv.home.Env.FormatAction(base.Action)
	tq, ok := srv.sys.Agent().Q().(*rl.TableQ)
	if !ok {
		srv.mu.Unlock()
		t.Fatalf("daemon Q function is %T, want *rl.TableQ", srv.sys.Agent().Q())
	}
	width := len(tq.Q(recState, 600))
	noop := srv.sys.Agent().Minis().NoOpIndex()
	diverted := false
	for m := 0; m < width && !diverted; m++ {
		if m == noop {
			continue
		}
		if _, err := tq.Update([]rl.Experience{{S: recState, T: 600, Minis: []int{m}}},
			[]float64{1e4}); err != nil {
			srv.mu.Unlock()
			t.Fatalf("poison mini %d: %v", m, err)
		}
		d, err := srv.sys.RecommendDecision(recState, 600)
		if err != nil {
			srv.mu.Unlock()
			t.Fatalf("poisoned recommendation: %v", err)
		}
		diverted = srv.home.Env.FormatAction(d.Action) != baseAction
	}
	srv.mu.Unlock()
	if !diverted {
		t.Fatal("could not corrupt the policy into recommending differently")
	}

	// Events (never recommendations: the corrupted policy must be caught
	// by shadow replay, not by serving) drive learn steps, learn steps
	// drive shadow evaluations, and the divergent report fires the alert.
	// The whole loop — fire, rollback, clean shadow, resolve — can close
	// within two engine ticks, so the waits read the transition history
	// rather than racing the instantaneous firing set.
	waitUntil(t, 30*time.Second, "drift alert to fire", func() bool {
		feedEvents(t, srv, 8)
		return hasTransition(getAlerts(t, srv), rule, "firing")
	})

	// The rollback arm trips the watchdog, which restores the newest
	// checkpoint generation.
	waitUntil(t, 10*time.Second, "watchdog rollback", func() bool {
		_, body := httpGet(t, srv, "/healthz")
		var h healthStatus
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("/healthz is not valid JSON: %v", err)
		}
		return h.Watchdog.Rollbacks >= 1
	})

	// The restored policy replays the recorded trajectory faithfully, so
	// the next shadow evaluations report low divergence and the alert
	// resolves on its ClearFor cadence.
	waitUntil(t, 30*time.Second, "drift alert to resolve after rollback", func() bool {
		feedEvents(t, srv, 8)
		doc := getAlerts(t, srv)
		return hasTransition(doc, rule, "resolved") && !hasFiring(doc, rule)
	})
	assertLoggedLifecycle(t, cfg.AlertLogPath, rule)

	// The daemon serves on, un-degraded, off the restored generation.
	if resp := srv.handle(request{Op: "recommend"}); !resp.OK || resp.Degraded != 0 {
		t.Fatalf("post-rollback recommend: %+v", resp)
	}
}
