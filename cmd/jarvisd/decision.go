package main

import "jarvis/internal/replay"

// decisionRecord is one line of the structured decision log. The concrete
// type lives in internal/replay so the offline replay engine regenerates
// exactly the stream the daemon logs — same fields, same JSON encoding —
// and the verifier can diff the two. The daemon-side alias keeps the rest
// of this package (and its tests) reading naturally.
type decisionRecord = replay.LoggedDecision

// openDecisionLog opens the size-capped rotating decision log
// (replay.DecisionLog); rotation is disabled when maxBytes is 0.
func openDecisionLog(path string, maxBytes int64, keep int) (*replay.DecisionLog, error) {
	return replay.OpenDecisionLog(path, replay.LogOptions{MaxBytes: maxBytes, Keep: keep})
}
