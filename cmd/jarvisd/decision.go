package main

import (
	"bufio"
	"encoding/json"
	"os"
	"sync"
)

// decisionRecord is one line of the structured decision log (JSON lines,
// append-only): a recommendation the daemon produced or an applied event it
// checked, with the state it saw, the action, the Q value backing a
// recommendation, and the policy verdict ("safe", "unsafe", or "degraded").
// The log makes the safety behavior auditable offline: every deny and every
// degraded fallback is on disk, not just in an aggregate counter.
type decisionRecord struct {
	UnixNs   int64    `json:"unixNs"`
	Kind     string   `json:"kind"` // "recommend" | "event"
	Minute   int      `json:"minute"`
	State    []string `json:"state"`
	Action   string   `json:"action"`
	Q        float64  `json:"q,omitempty"`
	Degraded bool     `json:"degraded,omitempty"`
	Verdict  string   `json:"verdict"`
	// Trace is the hex trace ID when this request was sampled by the span
	// tracer — the join key into /debug/traces.
	Trace string `json:"trace,omitempty"`
	// Anomaly is the benign-anomaly ANN's score for a recommendation's
	// transition (only with -anomaly-filter).
	Anomaly float64 `json:"anomaly,omitempty"`
}

// decisionLog appends decision records to a file as JSON lines. Writes are
// buffered; Sync flushes the buffer and fsyncs so a crash loses at most the
// entries since the last Sync. Safe for concurrent use.
type decisionLog struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	enc *json.Encoder
}

func openDecisionLog(path string) (*decisionLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	return &decisionLog{f: f, w: w, enc: json.NewEncoder(w)}, nil
}

// Record appends one decision line.
func (l *decisionLog) Record(rec decisionRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.enc.Encode(rec); err != nil {
		return err
	}
	mDecisionsLogged.Inc()
	return nil
}

// Sync flushes buffered lines to the OS and fsyncs the file.
func (l *decisionLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

// Close flushes, fsyncs, and closes the log, returning the first error.
func (l *decisionLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.w.Flush()
	if serr := l.f.Sync(); err == nil {
		err = serr
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
