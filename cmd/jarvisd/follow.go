package main

// Replication roles (DESIGN.md §15). A daemon is born a primary unless
// -follow names a primary to stream from; a follower becomes a primary
// exactly once, by promotion, and never goes back within one process
// lifetime.
//
// Primary side: any connection opening with replica.Magic is handed to a
// replica.Shipper that snapshots the daemon under the state lock and then
// tails the live WAL — the same frames the daemon just fsynced — so a
// follower applies the identical records a post-crash boot replay would.
//
// Follower side: the daemon builds its deterministic base exactly like a
// primary (train or restore), then converges onto the primary's state by
// adopting shipped snapshots through replay.Assets.RestoreSnapshot and
// applying shipped records through the same skip-stale logic boot replay
// uses. Every applied record is re-journaled to the follower's own WAL and
// re-audited against its own P_safe, so the follower's durability
// artifacts are always a self-consistent prefix of the primary's history —
// a promoted follower is indistinguishable from a primary that crashed and
// recovered at the same position.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"jarvis"
	"jarvis/internal/env"
	"jarvis/internal/replay"
	"jarvis/internal/replica"
	"jarvis/internal/telemetry"
	"jarvis/internal/trace"
)

const (
	rolePrimary  = "primary"
	roleFollower = "follower"

	errFollowerReadOnly = "read-only: daemon is following a primary (promote to enable writes)"
)

var (
	mReplicaReads   = telemetry.Default.Counter("jarvisd.replica.reads")
	mReplAppliedEvt = telemetry.Default.Counter("jarvisd.replica.applied.events")
	mReplAppliedTxn = telemetry.Default.Counter("jarvisd.replica.applied.txns")
	mReplAppliedRec = telemetry.Default.Counter("jarvisd.replica.applied.recs")
	mReplAdopted    = telemetry.Default.Counter("jarvisd.replica.adopted.snapshots")
	mPromotions     = telemetry.Default.Counter("jarvisd.promotions")
)

// role reports the daemon's replication role.
func (s *server) role() string {
	if s.following.Load() {
		return roleFollower
	}
	return rolePrimary
}

// --- primary side -----------------------------------------------------

// serveReplication hands a replica.Magic connection to a shipper for the
// lifetime of the connection. Needs a journal to tail; a follower refuses
// to be followed (no cascading replication).
func (s *server) serveReplication(conn net.Conn, br *bufio.Reader) {
	if s.wal == nil {
		s.cfg.Logf("jarvisd: replication from %s rejected: daemon runs without -wal", conn.RemoteAddr())
		return
	}
	if s.following.Load() {
		s.cfg.Logf("jarvisd: replication from %s rejected: daemon is itself a follower", conn.RemoteAddr())
		return
	}
	sh := replica.NewShipper(replica.ShipperConfig{
		WALDir:       s.cfg.WALDir,
		Snapshot:     s.replicationSnapshot,
		Counters:     s.replicaCounters,
		WriteTimeout: s.cfg.WriteTimeout,
		Logf:         s.cfg.Logf,
	})
	if err := sh.ServeConn(conn, br, s.stop); err != nil {
		s.cfg.Logf("jarvisd: replication stream to %s ended: %v", conn.RemoteAddr(), err)
	}
}

// replicationSnapshot serializes the daemon's state for a follower: the
// exact bytes a checkpoint save would persist, numbered by a process-local
// generation counter. The snapshot's sequence counters are what make the
// overlapping WAL re-ship idempotent on the follower.
func (s *server) replicationSnapshot() (uint64, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ck, err := s.snapshotLocked()
	if err != nil {
		return 0, nil, err
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return 0, nil, err
	}
	return s.snapshotGen.Add(1), data, nil
}

// replicaCounters reports the daemon's applied position — shipped in
// heartbeats on the primary, sent in the hello on the follower.
func (s *server) replicaCounters() replica.Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return replica.Counters{Events: s.eventsIngested, Steps: s.onlineSteps, Recs: s.recommendsServed}
}

// --- follower side ----------------------------------------------------

// startFollowing flips the daemon into follower mode and launches the
// follow loop. Called at the end of newServer, after the deterministic
// base (train or restore, plus own-WAL replay) is fully assembled.
func (s *server) startFollowing() {
	s.following.Store(true)
	telemetry.Default.GaugeFunc("jarvisd.replica.lag.records", s.replicationLag)
	s.wg.Add(1)
	go s.followLoop()
	s.cfg.Logf("jarvisd: following primary at %s (promote-after %v)", s.cfg.FollowAddr, s.cfg.PromoteAfter)
}

// followLoop drives the replication client until promotion or shutdown.
// A stalled primary promotes automatically when PromoteAfter is positive;
// a fatal apply error forces a full resync (the next connection re-seeds
// the replica from a fresh snapshot, which adoptSnapshot applies
// wholesale), so a torn or hostile frame degrades to a reconnect rather
// than a dead standby.
func (s *server) followLoop() {
	defer s.wg.Done()
	auto := s.cfg.PromoteAfter > 0
	timeout := s.cfg.PromoteAfter
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	for {
		f := replica.NewFollower(replica.FollowerConfig{
			Addr:       s.cfg.FollowAddr,
			Timeout:    timeout,
			Have:       s.replicaCounters,
			OnSnapshot: s.adoptSnapshot,
			OnRecord:   s.applyShippedRecord,
			Logf:       s.cfg.Logf,
		})
		s.mu.Lock()
		s.replica = f
		s.mu.Unlock()
		err := f.Run(s.followStop)
		switch {
		case err == nil:
			// followStop closed: an operator promote or a shutdown. The
			// follower drained its buffered tail before returning, so
			// promotion seals everything the primary handed over.
			if s.promoteRequested.Load() {
				s.promote("operator request")
			}
			return
		case errors.Is(err, replica.ErrStalled):
			if auto {
				s.promote(fmt.Sprintf("primary silent past %v", timeout))
				return
			}
			s.cfg.Logf("jarvisd: primary silent past %v; automatic promotion disabled, still following", timeout)
		default:
			s.cfg.Logf("jarvisd: replication apply failed (%v); resyncing from a fresh snapshot", err)
		}
		select {
		case <-s.followStop:
			if s.promoteRequested.Load() {
				s.promote("operator request")
			}
			return
		case <-time.After(time.Second):
		}
	}
}

// adoptSnapshot applies a shipped checkpoint wholesale: the same
// RestoreSnapshot path boot restore uses, followed by a checkpoint of the
// follower's own store and a reset of its own WAL. That last step is the
// barrier alignment: after an adopt, the follower's durability artifacts
// describe exactly the adopted state, so its own crash recovery — and any
// later promotion — replays only records applied after this point.
func (s *server) adoptSnapshot(gen uint64, data []byte) error {
	var ck replay.Snapshot
	if err := json.Unmarshal(data, &ck); err != nil {
		return fmt.Errorf("decode snapshot gen %d: %w", gen, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ck.Validate(replayConfig(s.cfg), s.home.Env.K()); err != nil {
		return fmt.Errorf("snapshot gen %d: %w", gen, err)
	}
	if err := s.assets.RestoreSnapshot(&ck, s.cfg.Logf); err != nil {
		return fmt.Errorf("adopt snapshot gen %d: %w", gen, err)
	}
	s.violations = ck.Violations
	s.eventsIngested = ck.Events
	s.onlineSteps = ck.OnlineSteps
	s.learnSteps = ck.LearnSteps
	s.recommendsServed = ck.Recommends
	if len(ck.State) == s.home.Env.K() {
		s.state = ck.State
	}
	mReplAdopted.Inc()
	// Persist the adopted state as the follower's own generation. A
	// follower without a store still resets its journal — the shipped
	// records that follow are relative to this snapshot.
	switch {
	case s.store != nil:
		if err := s.saveCheckpointLocked(); err != nil {
			s.cfg.Logf("jarvisd: checkpoint after snapshot adopt failed: %v", err)
		}
	case s.wal != nil:
		if err := s.wal.Reset(); err != nil {
			s.cfg.Logf("jarvisd: wal reset after snapshot adopt failed: %v", err)
		} else {
			s.walSpans = nil
		}
	}
	s.cfg.Logf("jarvisd: adopted primary snapshot gen %d (events=%d steps=%d recs=%d)",
		gen, ck.Events, ck.OnlineSteps, ck.Recommends)
	return nil
}

// applyShippedRecord applies one verbatim WAL record from the primary:
// re-journal it to the follower's own log, then run it through the same
// skip-stale apply logic boot replay uses — with the live path's decision
// logging, so a promoted follower's decision log verifies against its WAL
// exactly like a primary's does.
func (s *server) applyShippedRecord(b []byte) error {
	rec, err := replay.DecodeRecord(b)
	if err != nil {
		// Framing CRC passed on the primary and in transit: this is a
		// foreign or future-format record. Skip it, like boot replay.
		s.cfg.Logf("jarvisd: replication: skipping undecodable record: %v", err)
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.home.Env
	switch rec.K {
	case replay.KindEvent:
		if rec.N <= s.eventsIngested {
			return nil // covered by the adopted snapshot
		}
		if rec.D < 0 || rec.D >= e.K() {
			s.cfg.Logf("jarvisd: replication: evt #%d has bad device %d", rec.N, rec.D)
			return nil
		}
		a := env.NoOp(e.K())
		a[rec.D] = rec.A
		next, err := e.Transition(s.state, a)
		if err != nil {
			s.cfg.Logf("jarvisd: replication: evt #%d does not apply: %v", rec.N, err)
			return nil
		}
		// Re-derive the safety verdict against the replica's own P_safe,
		// exactly like boot replay: the table is deterministic, so the
		// follower's violation count stays honest.
		unsafe := !s.sys.SafeTable().SafeTransition(e.StateKey(s.state), e.StateKey(next), a)
		if unsafe {
			s.violations++
			mEventsUnsafe.Inc()
			s.mUnsafeByDevice[rec.D].Inc()
		}
		s.state = next
		s.eventsIngested++
		s.journal(nil, rec)
		mReplAppliedEvt.Inc()
		if s.decisions != nil {
			verdict := "safe"
			if unsafe {
				verdict = "unsafe"
			}
			s.logDecision(nil, decisionRecord{
				Kind: "event", Minute: rec.M,
				State:   stateNames(e, s.state),
				Action:  e.FormatAction(a),
				Verdict: verdict,
			})
		}

	case replay.KindTransition:
		if rec.N <= s.onlineSteps {
			return nil
		}
		if len(rec.S) != e.K() || rec.D < 0 || rec.D >= e.K() {
			s.cfg.Logf("jarvisd: replication: txn #%d malformed", rec.N)
			return nil
		}
		a := env.NoOp(e.K())
		a[rec.D] = rec.A
		s.journal(nil, rec)
		s.ingestTransition(nil, rec.S, a, rec.M)
		mReplAppliedTxn.Inc()

	case replay.KindRecommend:
		if rec.N <= s.recommendsServed {
			return nil
		}
		s.recommendsServed++
		s.journal(nil, rec)
		mReplAppliedRec.Inc()
		if s.decisions != nil {
			// Re-execute the policy at this point in the stream — the same
			// regeneration the offline replay engine performs — so the
			// follower's decision log carries its own recommendation audit
			// trail, bit-compatible with a verify replay.
			d, err := s.sys.RecommendDecision(s.state, rec.M)
			if err != nil {
				s.cfg.Logf("jarvisd: replication: rec #%d re-execution failed: %v", rec.N, err)
				return nil
			}
			verdict := "safe"
			if d.Degraded {
				verdict = "degraded"
			}
			if next, terr := e.Transition(s.state, d.Action); terr == nil {
				if !s.sys.SafeTable().SafeTransition(e.StateKey(s.state), e.StateKey(next), d.Action) {
					verdict = "unsafe"
				}
			}
			s.logDecision(nil, decisionRecord{
				Kind: "recommend", Minute: rec.M,
				State:    stateNames(e, s.state),
				Action:   e.FormatAction(d.Action),
				Q:        d.Value,
				Degraded: d.Degraded,
				Verdict:  verdict,
			})
		}

	default:
		s.cfg.Logf("jarvisd: replication: unknown record kind %q", rec.K)
	}
	return nil
}

// replicaRecommend serves a read-only recommendation from the replica
// policy while following: same evaluation as recommendOne, but nothing is
// journaled, logged, or counted as served — the decision stream belongs to
// the primary. Caller holds s.mu.
func (s *server) replicaRecommend(sp *trace.Span, minute int) (jarvis.Decision, error) {
	d, err := s.sys.RecommendDecisionTraced(sp, s.state, minute)
	if err != nil {
		return jarvis.Decision{}, err
	}
	s.replicaReads++
	mReplicaReads.Inc()
	return d, nil
}

// requestPromote arms an operator-requested promotion. It only signals —
// the follow loop performs the promotion after draining the buffered
// stream tail — because the caller holds s.mu and the drain's apply
// callbacks need it. The role flips to primary moments later.
func (s *server) requestPromote() error {
	if !s.following.Load() {
		return fmt.Errorf("not a follower: daemon is already primary")
	}
	s.promoteRequested.Store(true)
	s.followStopOnce.Do(func() { close(s.followStop) })
	return nil
}

// promote seals the follower and turns it into a full read-write primary:
// under the state lock, the role flips and a checkpoint generation is
// saved covering everything applied (stream, buffered tail, own WAL), so
// the promoted daemon's artifacts verify exactly like a primary's.
func (s *server) promote(reason string) {
	start := time.Now()
	s.mu.Lock()
	s.replica = nil
	s.following.Store(false)
	s.promotedAt.Store(time.Now().UnixNano())
	events, steps, recs := s.eventsIngested, s.onlineSteps, s.recommendsServed
	if s.store != nil {
		if err := s.saveCheckpointLocked(); err != nil {
			s.cfg.Logf("jarvisd: promotion checkpoint failed: %v", err)
		}
	}
	s.mu.Unlock()
	mPromotions.Inc()
	s.cfg.Logf("jarvisd: promoted to primary (%s) in %v at events=%d steps=%d recs=%d",
		reason, time.Since(start).Round(time.Millisecond), events, steps, recs)
}

// replicationLag reports how many records the follower trails the
// primary's last-announced position by — the jarvisd.replica.lag.records
// gauge the replication-lag SLO burns against. Zero on a primary, before
// the first heartbeat, and after promotion.
func (s *server) replicationLag() float64 {
	if !s.following.Load() {
		return 0
	}
	s.mu.Lock()
	f := s.replica
	have := replica.Counters{Events: s.eventsIngested, Steps: s.onlineSteps, Recs: s.recommendsServed}
	s.mu.Unlock()
	if f == nil {
		return 0
	}
	at, _, ok := f.Primary()
	if !ok {
		return 0
	}
	return float64(have.Behind(at))
}

// replicationStatus is the /healthz replication block.
type replicationStatus struct {
	Role string `json:"role"`
	// FollowAddr is the primary this daemon follows (or followed, after
	// promotion).
	FollowAddr string `json:"followAddr,omitempty"`
	Connected  bool   `json:"connected"`
	// LagRecords is the current value of jarvisd.replica.lag.records.
	LagRecords float64 `json:"lagRecords"`
	// ReplicaReads counts read-only recommendations served while following.
	ReplicaReads int `json:"replicaReads,omitempty"`
	// PrimaryHeardAgoSec is the silence since the primary's last frame.
	PrimaryHeardAgoSec float64 `json:"primaryHeardAgoSec,omitempty"`
	// PromotedAgoSec is how long ago this daemon promoted (absent on a
	// born primary and on a still-following standby).
	PromotedAgoSec float64 `json:"promotedAgoSec,omitempty"`
}

// replicationHealth assembles the /healthz replication block; nil when the
// daemon was born a primary and never configured to follow.
func (s *server) replicationHealth() *replicationStatus {
	if s.cfg.FollowAddr == "" {
		return nil
	}
	st := &replicationStatus{
		Role:       s.role(),
		FollowAddr: s.cfg.FollowAddr,
		LagRecords: s.replicationLag(),
	}
	s.mu.Lock()
	f := s.replica
	st.ReplicaReads = s.replicaReads
	s.mu.Unlock()
	if f != nil {
		st.Connected = f.Connected()
		if _, heard, ok := f.Primary(); ok {
			st.PrimaryHeardAgoSec = time.Since(heard).Seconds()
		}
	}
	if at := s.promotedAt.Load(); at > 0 {
		st.PromotedAgoSec = time.Since(time.Unix(0, at)).Seconds()
	}
	return st
}
