package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"jarvis/internal/env"
	"jarvis/internal/rl"
)

// durableConfig is the deterministic-replay daemon configuration the
// durability tests share: pinned minute, generation checkpoints, WAL.
func durableConfig(dir string) serverConfig {
	return serverConfig{
		Seed: 1, LearningDays: 2, Episodes: 2,
		CheckpointPath:  filepath.Join(dir, "ckpt", "jarvisd.ckpt"),
		WALDir:          filepath.Join(dir, "wal"),
		DecisionLogPath: filepath.Join(dir, "decisions.log"),
		// A small cap forces rotation, so the replay-verification tests
		// exercise reads across sealed files — and, in the SIGKILL harness,
		// sealed files are the only decisions that survive the crash (the
		// active file's tail is buffered). Keep is large: retention pruning
		// would delete the head of the recorded stream and break the
		// origin-aligned verification.
		DecisionLogMaxBytes: 2048,
		DecisionLogKeep:     1000,
		FixedMinute:         600,
		OnlineTrainEvery:    4,
		MaxQueue:            -1, // never shed: every event must reach the learner
	}
}

// eventScript cycles tv and fridge toggles — legal from any state they
// reach — so every event is accepted and (with shedding off) ingested.
// Shared with the SIGKILL crash harness, which must drive the victim, the
// successor, and the control through identical traffic.
var eventScript = []request{
	{Op: "event", Device: "tv", Action: "power_on"},
	{Op: "event", Device: "fridge", Action: "open_door"},
	{Op: "event", Device: "tv", Action: "power_off"},
	{Op: "event", Device: "fridge", Action: "close_door"},
}

// feedEvents drives n scripted device events through the full request
// path in-process.
func feedEvents(t *testing.T, s *server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		req := eventScript[i%len(eventScript)]
		if resp := s.handle(req); resp.Error != "" {
			t.Fatalf("event %d (%s %s): %s", i, req.Device, req.Action, resp.Error)
		}
	}
}

// learnState fetches the online-learning fingerprint.
func learnState(t *testing.T, s *server) response {
	t.Helper()
	resp := s.handle(request{Op: "learnstate"})
	if !resp.OK {
		t.Fatalf("learnstate: %s", resp.Error)
	}
	return resp
}

// assertSameLearnState asserts two daemons are in identical training
// states: same ingest counters, same replay buffer size, same serialized
// Q function.
func assertSameLearnState(t *testing.T, want, got response) {
	t.Helper()
	if got.Events != want.Events || got.OnlineSteps != want.OnlineSteps ||
		got.LearnSteps != want.LearnSteps || got.ReplaySize != want.ReplaySize ||
		got.Violations != want.Violations {
		t.Errorf("counters diverged: got events=%d steps=%d learn=%d replay=%d viol=%d, want events=%d steps=%d learn=%d replay=%d viol=%d",
			got.Events, got.OnlineSteps, got.LearnSteps, got.ReplaySize, got.Violations,
			want.Events, want.OnlineSteps, want.LearnSteps, want.ReplaySize, want.Violations)
	}
	if got.QSum != want.QSum {
		t.Errorf("Q fingerprint diverged: got %s, want %s", got.QSum, want.QSum)
	}
}

// TestWALReplayRestoresLearningState is the in-process crash drill: feed
// enough events to run real learn steps, drop the daemon without any
// shutdown (its checkpoint predates every event), and boot a successor on
// the same directories. WAL replay must walk the successor into the exact
// training state the victim died in.
func TestWALReplayRestoresLearningState(t *testing.T) {
	cfg := durableConfig(t.TempDir())

	victim, err := newServer(cfg)
	if err != nil {
		t.Fatalf("victim: %v", err)
	}
	// 48 events: the replay buffer passes the 32-experience batch floor,
	// so the every-4th learn steps actually update Q.
	feedEvents(t, victim, 48)
	want := learnState(t, victim)
	if want.LearnSteps == 0 {
		t.Fatal("no learn steps ran; the drill would prove nothing")
	}
	// Crash: no Close, no final checkpoint, no WAL reset.

	successor, err := newServer(cfg)
	if err != nil {
		t.Fatalf("successor: %v", err)
	}
	defer successor.Close()
	if !successor.restored {
		t.Fatal("successor trained fresh instead of restoring the checkpoint")
	}
	assertSameLearnState(t, want, learnState(t, successor))

	// The successor keeps going from where the victim died: identical
	// traffic must keep identical fingerprints against a never-crashed
	// control run.
	control, err := newServer(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatalf("control: %v", err)
	}
	defer control.Close()
	feedEvents(t, control, 48)
	feedEvents(t, control, 8)
	feedEvents(t, successor, 8)
	assertSameLearnState(t, learnState(t, control), learnState(t, successor))
}

// TestWALTornTailDoesNotBlockRecovery crashes mid-append: the active
// segment ends in a torn, half-written record. Recovery must truncate the
// tail and replay every complete record.
func TestWALTornTailDoesNotBlockRecovery(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	victim, err := newServer(cfg)
	if err != nil {
		t.Fatalf("victim: %v", err)
	}
	feedEvents(t, victim, 12)
	want := learnState(t, victim)

	// Tear the tail: a length prefix promising 256 bytes, then far fewer.
	segs, err := filepath.Glob(filepath.Join(cfg.WALDir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments: %v", err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x01, 0x00, 0x00, 'n', 'o', 'p', 'e'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	successor, err := newServer(cfg)
	if err != nil {
		t.Fatalf("successor: %v", err)
	}
	defer successor.Close()
	assertSameLearnState(t, want, learnState(t, successor))
}

// TestAdmissionControlShedsByTier pins the inflight depth and checks the
// shedding ladder: learning first, recommendations later, audits never.
func TestAdmissionControlShedsByTier(t *testing.T) {
	srv, err := newServer(serverConfig{
		Seed: 1, LearningDays: 2, Episodes: 2,
		FixedMinute: 600, MaxQueue: 4,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	defer srv.Close()

	// Depth 4 (3 pinned + this request): above MaxQueue/2, at MaxQueue.
	srv.inflight.Store(3)
	if resp := srv.handle(request{Op: "event", Device: "tv", Action: "power_on"}); !resp.OK {
		t.Fatalf("audited event rejected under load: %s", resp.Error)
	}
	if srv.eventsIngested != 1 || srv.shedEvents != 1 || srv.onlineSteps != 0 {
		t.Errorf("events=%d shed=%d steps=%d, want audit applied (1) with learning shed (1, 0 steps)",
			srv.eventsIngested, srv.shedEvents, srv.onlineSteps)
	}
	srv.inflight.Store(3)
	if resp := srv.handle(request{Op: "recommend"}); !resp.OK {
		t.Errorf("recommend shed at depth %d, threshold is > %d: %s", 4, 4, resp.Error)
	}

	// Depth 5: above MaxQueue — recommendations shed with a retry hint,
	// audits still run.
	srv.inflight.Store(4)
	resp := srv.handle(request{Op: "recommend"})
	if resp.OK || !resp.Busy || resp.RetryAfterMs <= 0 {
		t.Errorf("overloaded recommend = %+v, want busy rejection with retry hint", resp)
	}
	if srv.shedRecommends != 1 {
		t.Errorf("shedRecommends = %d, want 1", srv.shedRecommends)
	}
	srv.inflight.Store(4)
	if resp := srv.handle(request{Op: "event", Device: "tv", Action: "power_off"}); !resp.OK {
		t.Fatalf("audit shed at depth 5: %s", resp.Error)
	}
	if srv.eventsIngested != 2 {
		t.Errorf("eventsIngested = %d, want 2 (audits are never shed)", srv.eventsIngested)
	}

	// Idle again: learning resumes. (Training already part-filled the
	// replay buffer, so measure growth, not absolute size.)
	replay0 := srv.sys.Agent().ReplayBuffer().Len()
	srv.inflight.Store(0)
	if resp := srv.handle(request{Op: "event", Device: "tv", Action: "power_on"}); !resp.OK {
		t.Fatalf("idle event: %s", resp.Error)
	}
	if srv.onlineSteps != 1 || srv.sys.Agent().ReplayBuffer().Len() != replay0+1 {
		t.Errorf("steps=%d replay=%d, want learning resumed (1 step, buffer +1 from %d)",
			srv.onlineSteps, srv.sys.Agent().ReplayBuffer().Len(), replay0)
	}
}

// TestWatchdogRollsBackToGenerationAndHealthzReports poisons the live Q
// table with a non-finite value, then asks for a recommendation. The
// watchdog must trip, reload Q from the newest checkpoint generation, and
// serve the request healthily — all visible through /healthz.
func TestWatchdogRollsBackToGenerationAndHealthzReports(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	cfg.WALDir = ""
	cfg.DebugAddr = "127.0.0.1:0"
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	if err := srv.listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srv.Close()

	// Poison the exact row the pinned-minute recommendation will read.
	q, ok := srv.sys.Agent().Q().(*rl.TableQ)
	if !ok {
		t.Fatalf("agent backend is %T, want *rl.TableQ", srv.sys.Agent().Q())
	}
	state := append(env.State(nil), srv.state...)
	if _, err := q.Update([]rl.Experience{{S: state, T: 600, Minis: []int{0}}},
		[]float64{math.Inf(1)}); err != nil {
		t.Fatalf("poison update: %v", err)
	}
	// The poke above bypassed System's mutation hooks; stale-mark the
	// compiled table the way any in-band mutation would. The rebuild
	// refuses the non-finite row, so the request below reaches the live
	// agent — and its watchdog.
	invalidateCompiledFor(srv)

	resp := srv.handle(request{Op: "recommend"})
	if !resp.OK {
		t.Fatalf("recommend after poisoning: %s", resp.Error)
	}
	if resp.Degraded != 0 {
		t.Errorf("recommendation degraded %d times; rollback should have healed it", resp.Degraded)
	}
	st := srv.watchdog.Stats()
	if st.Trips != 1 || st.Rollbacks != 1 || st.RestoreFailures != 0 {
		t.Fatalf("watchdog stats = %+v, want 1 trip healed by 1 rollback", st)
	}
	// The reloaded table serves without tripping again.
	if resp := srv.handle(request{Op: "recommend"}); !resp.OK {
		t.Fatalf("recommend after rollback: %s", resp.Error)
	}
	if st := srv.watchdog.Stats(); st.Trips != 1 {
		t.Errorf("trips = %d after healthy recommend, want still 1", st.Trips)
	}

	// /healthz: healthy (the broken Q never served), rollback visible.
	hres, err := http.Get(fmt.Sprintf("http://%s/healthz", srv.DebugAddr()))
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d, want 200 (rollback healed the optimizer)", hres.StatusCode)
	}
	var h healthStatus
	if err := json.NewDecoder(hres.Body).Decode(&h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	if h.Watchdog.Rollbacks != 1 || h.Watchdog.Trips != 1 {
		t.Errorf("healthz watchdog = %+v, want 1 trip / 1 rollback", h.Watchdog)
	}
	if h.Status != "ok" {
		t.Errorf("healthz status = %q, want ok", h.Status)
	}
}

// TestFixedMinutePinsClock: with -fixed-minute every request sees the same
// time instance regardless of wall clock.
func TestFixedMinutePinsClock(t *testing.T) {
	srv, err := newServer(serverConfig{
		Seed: 1, LearningDays: 2, Episodes: 2, FixedMinute: 600,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	defer srv.Close()
	for i := 0; i < 3; i++ {
		if resp := srv.handle(request{Op: "state"}); resp.Minute != 600 {
			t.Fatalf("minute = %d, want pinned 600", resp.Minute)
		}
	}
}
