package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"jarvis/internal/checkpoint"
	"jarvis/internal/env"
)

// checkpointVersion guards the on-disk format; bump on layout changes.
// v2 added the runtime state a WAL replay builds on: environment state,
// ingest/learn counters, exploration rate, and the replay buffer.
const checkpointVersion = 2

// checkpointFile is one checkpoint generation: the training configuration
// it was produced under (so a restarted daemon can detect mismatches and
// retrain), the learned P_safe, the trained Q function, and the runtime
// state the WAL replays on top of.
type checkpointFile struct {
	Version      int             `json:"version"`
	Seed         int64           `json:"seed"`
	LearningDays int             `json:"learningDays"`
	Episodes     int             `json:"episodes"`
	Violations   int             `json:"violations"`
	State        env.State       `json:"state,omitempty"`
	Events       int             `json:"events,omitempty"`
	OnlineSteps  int             `json:"onlineSteps,omitempty"`
	LearnSteps   int             `json:"learnSteps,omitempty"`
	Epsilon      float64         `json:"epsilon,omitempty"`
	Table        json.RawMessage `json:"table"`
	Q            json.RawMessage `json:"q"`
	Replay       json.RawMessage `json:"replay,omitempty"`
}

// loadRetry is the restore policy: a few quick attempts absorb briefly
// flaky storage. Deterministic rejections (checksum, decode, config
// mismatch) are wrapped in checkpoint.ErrCorrupt so they skip the retries
// and fall straight back to the previous generation.
var loadRetry = checkpoint.LoadOptions{Tries: 3, Backoff: 25 * time.Millisecond}

// openStore opens the generation store rooted next to cfg.CheckpointPath:
// generations are path.000001, path.000002, ... plus a MANIFEST in the
// same directory. A corrupt manifest is quarantined (renamed aside) and
// the store reopened empty rather than keeping the daemon down.
func openStore(cfg serverConfig) (*checkpoint.Store, error) {
	dir, base := filepath.Dir(cfg.CheckpointPath), filepath.Base(cfg.CheckpointPath)
	now := func() int64 { return time.Now().UnixNano() }
	st, err := checkpoint.OpenStore(dir, base, cfg.CheckpointRetain, now)
	if err == nil {
		return st, nil
	}
	cfg.Logf("jarvisd: checkpoint manifest unreadable (%v); quarantining", err)
	bad := filepath.Join(dir, "MANIFEST")
	if rerr := os.Rename(bad, bad+".corrupt"); rerr != nil {
		return nil, fmt.Errorf("checkpoint store: %w", err)
	}
	return checkpoint.OpenStore(dir, base, cfg.CheckpointRetain, now)
}

// saveCheckpoint atomically persists the daemon state as a new
// generation. Safe to call from any goroutine; it takes the state lock.
func (s *server) saveCheckpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveCheckpointLocked()
}

// saveCheckpointLocked is saveCheckpoint for callers already holding s.mu.
// On success the WAL is reset: the checkpoint now durably covers
// everything the journal would replay. (If the process dies between the
// save and the reset, the sequence numbers persisted in the checkpoint
// make the stale records no-ops on replay.)
func (s *server) saveCheckpointLocked() error {
	if s.store == nil {
		mCkptSaveFailures.Inc()
		return fmt.Errorf("checkpoint: store unavailable")
	}
	var table, q, replay bytes.Buffer
	if err := s.sys.SaveTable(&table); err != nil {
		mCkptSaveFailures.Inc()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := s.sys.SaveQ(&q); err != nil {
		mCkptSaveFailures.Inc()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := s.sys.Agent().ReplayBuffer().Save(&replay); err != nil {
		mCkptSaveFailures.Inc()
		return fmt.Errorf("checkpoint: %w", err)
	}
	ckpt := checkpointFile{
		Version:      checkpointVersion,
		Seed:         s.cfg.Seed,
		LearningDays: s.cfg.LearningDays,
		Episodes:     s.cfg.Episodes,
		Violations:   s.violations,
		State:        s.state,
		Events:       s.eventsIngested,
		OnlineSteps:  s.onlineSteps,
		LearnSteps:   s.learnSteps,
		Epsilon:      s.sys.Agent().Epsilon(),
		Table:        table.Bytes(),
		Q:            q.Bytes(),
		Replay:       replay.Bytes(),
	}
	gen, err := s.store.Save(func(w io.Writer) error {
		return json.NewEncoder(w).Encode(&ckpt)
	})
	if err != nil {
		mCkptSaveFailures.Inc()
		return err
	}
	mCkptSaves.Inc()
	s.lastCkpt.Store(time.Now().UnixNano())
	if s.wal != nil {
		if err := s.wal.Reset(); err != nil {
			s.cfg.Logf("jarvisd: wal reset after checkpoint gen %d failed: %v", gen, err)
		}
	}
	return nil
}

// validateCheckpoint rejects a decoded generation the daemon cannot use.
// Every rejection here is deterministic — retrying the same bytes cannot
// help — so each is wrapped in checkpoint.ErrCorrupt, which makes the
// store fall back to the previous generation without burning retries.
func validateCheckpoint(cfg serverConfig, k int, ckpt *checkpointFile) error {
	if ckpt.Version != checkpointVersion {
		return fmt.Errorf("version %d, want %d: %w", ckpt.Version, checkpointVersion, checkpoint.ErrCorrupt)
	}
	if ckpt.Seed != cfg.Seed || ckpt.LearningDays != cfg.LearningDays || ckpt.Episodes != cfg.Episodes {
		return fmt.Errorf("trained with seed=%d days=%d episodes=%d, daemon wants seed=%d days=%d episodes=%d: %w",
			ckpt.Seed, ckpt.LearningDays, ckpt.Episodes, cfg.Seed, cfg.LearningDays, cfg.Episodes, checkpoint.ErrCorrupt)
	}
	if len(ckpt.Table) == 0 || len(ckpt.Q) == 0 {
		return fmt.Errorf("missing table or Q payload: %w", checkpoint.ErrCorrupt)
	}
	if len(ckpt.State) != 0 && len(ckpt.State) != k {
		return fmt.Errorf("state has %d devices, environment has %d: %w", len(ckpt.State), k, checkpoint.ErrCorrupt)
	}
	return nil
}

// loadCheckpoint decodes the newest usable generation, falling back
// generation by generation past corrupt or mismatched ones.
func (s *server) loadCheckpoint() (*checkpointFile, uint64, error) {
	var ckpt checkpointFile
	gen, err := s.store.Load(loadRetry, func(r io.Reader) error {
		ckpt = checkpointFile{}
		if err := json.NewDecoder(r).Decode(&ckpt); err != nil {
			return fmt.Errorf("decode: %v: %w", err, checkpoint.ErrCorrupt)
		}
		return validateCheckpoint(s.cfg, s.home.Env.K(), &ckpt)
	})
	if err != nil {
		return nil, 0, err
	}
	return &ckpt, gen, nil
}

// restoreCheckpoint rebuilds the trained system and runtime counters from
// the newest usable generation, skipping optimizer training. Any failure
// is returned so the caller can fall back to fresh training.
func (s *server) restoreCheckpoint(assets *learningAssets) error {
	ckpt, gen, err := s.loadCheckpoint()
	if err != nil {
		return err
	}
	if err := assets.sys.LoadTable(bytes.NewReader(ckpt.Table)); err != nil {
		return fmt.Errorf("checkpoint table: %w", err)
	}
	if err := assets.sys.Restore(assets.simCfg, assets.trainCfg, bytes.NewReader(ckpt.Q)); err != nil {
		return err
	}
	s.violations = ckpt.Violations
	s.eventsIngested = ckpt.Events
	s.onlineSteps = ckpt.OnlineSteps
	s.learnSteps = ckpt.LearnSteps
	if len(ckpt.State) == s.home.Env.K() {
		s.state = ckpt.State
	}
	if ckpt.Epsilon > 0 {
		assets.sys.Agent().SetEpsilon(ckpt.Epsilon)
	}
	if len(ckpt.Replay) > 0 {
		if err := assets.sys.Agent().ReplayBuffer().Load(bytes.NewReader(ckpt.Replay)); err != nil {
			// The replay buffer is an accelerant, not ground truth; losing
			// it degrades online learning but nothing else.
			s.cfg.Logf("jarvisd: checkpoint gen %d replay buffer unloadable (%v); starting empty", gen, err)
		}
	}
	return nil
}

// restoreNewestQ rolls only the agent's Q function back to the newest
// valid generation — the divergence watchdog's recovery action. Runs on
// the dispatch path (caller holds s.mu).
func (s *server) restoreNewestQ() error {
	if s.store == nil {
		return fmt.Errorf("checkpoint store unavailable")
	}
	gen, err := s.store.Load(loadRetry, func(r io.Reader) error {
		var ckpt checkpointFile
		if err := json.NewDecoder(r).Decode(&ckpt); err != nil {
			return fmt.Errorf("decode: %v: %w", err, checkpoint.ErrCorrupt)
		}
		if err := validateCheckpoint(s.cfg, s.home.Env.K(), &ckpt); err != nil {
			return err
		}
		if err := s.sys.LoadQ(bytes.NewReader(ckpt.Q)); err != nil {
			return fmt.Errorf("load q: %v: %w", err, checkpoint.ErrCorrupt)
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.cfg.Logf("jarvisd: watchdog rolled Q back to checkpoint generation %d", gen)
	return nil
}
