package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"jarvis/internal/checkpoint"
	"jarvis/internal/replay"
)

// The checkpoint generation layout (replay.Snapshot, currently v3) lives
// in internal/replay: the daemon writes snapshots, and both crash recovery
// and the offline replay engine read them with the same validation, so a
// generation the daemon would restore is exactly one a replay can seed
// re-execution from.

// loadRetry is the restore policy: a few quick attempts absorb briefly
// flaky storage. Deterministic rejections (checksum, decode, config
// mismatch) are wrapped in checkpoint.ErrCorrupt so they skip the retries
// and fall straight back to the previous generation.
var loadRetry = checkpoint.LoadOptions{Tries: 3, Backoff: 25 * time.Millisecond}

// openStore opens the generation store rooted next to cfg.CheckpointPath:
// generations are path.000001, path.000002, ... plus a MANIFEST in the
// same directory. A corrupt manifest is quarantined (renamed aside) and
// the store reopened empty rather than keeping the daemon down.
func openStore(cfg serverConfig) (*checkpoint.Store, error) {
	dir, base := filepath.Dir(cfg.CheckpointPath), filepath.Base(cfg.CheckpointPath)
	now := func() int64 { return time.Now().UnixNano() }
	st, err := checkpoint.OpenStore(dir, base, cfg.CheckpointRetain, now)
	if err == nil {
		return st, nil
	}
	cfg.Logf("jarvisd: checkpoint manifest unreadable (%v); quarantining", err)
	bad := filepath.Join(dir, "MANIFEST")
	if rerr := os.Rename(bad, bad+".corrupt"); rerr != nil {
		return nil, fmt.Errorf("checkpoint store: %w", err)
	}
	return checkpoint.OpenStore(dir, base, cfg.CheckpointRetain, now)
}

// saveCheckpoint atomically persists the daemon state as a new
// generation. Safe to call from any goroutine; it takes the state lock.
func (s *server) saveCheckpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveCheckpointLocked()
}

// saveCheckpointLocked is saveCheckpoint for callers already holding s.mu.
// On success the WAL is reset: the checkpoint now durably covers
// everything the journal would replay. (If the process dies between the
// save and the reset, the sequence numbers persisted in the checkpoint
// make the stale records no-ops on replay.)
func (s *server) saveCheckpointLocked() error {
	if s.store == nil {
		mCkptSaveFailures.Inc()
		return fmt.Errorf("checkpoint: store unavailable")
	}
	ckpt, err := s.snapshotLocked()
	if err != nil {
		mCkptSaveFailures.Inc()
		return err
	}
	gen, err := s.store.Save(func(w io.Writer) error {
		return json.NewEncoder(w).Encode(ckpt)
	})
	if err != nil {
		mCkptSaveFailures.Inc()
		return err
	}
	mCkptSaves.Inc()
	s.lastCkpt.Store(time.Now().UnixNano())
	if s.wal != nil {
		if err := s.wal.Reset(); err != nil {
			s.cfg.Logf("jarvisd: wal reset after checkpoint gen %d failed: %v", gen, err)
		} else {
			// The journal is empty again; /healthz spans restart from here.
			s.walSpans = nil
		}
	}
	return nil
}

// snapshotLocked serializes the daemon state as a replay.Snapshot — the
// payload for both checkpoint generations and replication snapshots, so a
// follower seeds from exactly the bytes crash recovery would. Caller
// holds s.mu.
func (s *server) snapshotLocked() (*replay.Snapshot, error) {
	var table, q, rbuf bytes.Buffer
	if err := s.sys.SaveTable(&table); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := s.sys.SaveQ(&q); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := s.sys.Agent().ReplayBuffer().Save(&rbuf); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &replay.Snapshot{
		Version:      replay.SnapshotVersion,
		Seed:         s.cfg.Seed,
		LearningDays: s.cfg.LearningDays,
		Episodes:     s.cfg.Episodes,
		Violations:   s.violations,
		State:        s.state,
		Events:       s.eventsIngested,
		OnlineSteps:  s.onlineSteps,
		LearnSteps:   s.learnSteps,
		Recommends:   s.recommendsServed,
		Epsilon:      s.sys.Agent().Epsilon(),
		UseDNN:       s.cfg.UseDNN,
		Table:        table.Bytes(),
		Q:            q.Bytes(),
		Replay:       rbuf.Bytes(),
	}, nil
}

// loadCheckpoint decodes the newest usable generation, falling back
// generation by generation past corrupt or mismatched ones.
func (s *server) loadCheckpoint() (*replay.Snapshot, uint64, error) {
	var ckpt replay.Snapshot
	gen, err := s.store.Load(loadRetry, func(r io.Reader) error {
		ckpt = replay.Snapshot{}
		if err := json.NewDecoder(r).Decode(&ckpt); err != nil {
			return fmt.Errorf("decode: %v: %w", err, checkpoint.ErrCorrupt)
		}
		return ckpt.Validate(replayConfig(s.cfg), s.home.Env.K())
	})
	if err != nil {
		return nil, 0, err
	}
	return &ckpt, gen, nil
}

// restoreCheckpoint rebuilds the trained system and runtime counters from
// the newest usable generation, skipping optimizer training. Any failure
// is returned so the caller can fall back to fresh training.
func (s *server) restoreCheckpoint(assets *replay.Assets) error {
	ckpt, _, err := s.loadCheckpoint()
	if err != nil {
		return err
	}
	if err := assets.RestoreSnapshot(ckpt, s.cfg.Logf); err != nil {
		return err
	}
	s.violations = ckpt.Violations
	s.eventsIngested = ckpt.Events
	s.onlineSteps = ckpt.OnlineSteps
	s.learnSteps = ckpt.LearnSteps
	s.recommendsServed = ckpt.Recommends
	if len(ckpt.State) == s.home.Env.K() {
		s.state = ckpt.State
	}
	return nil
}

// restoreNewestQ rolls only the agent's Q function back to the newest
// valid generation — the divergence watchdog's recovery action. Runs on
// the dispatch path (caller holds s.mu).
func (s *server) restoreNewestQ() error {
	if s.store == nil {
		return fmt.Errorf("checkpoint store unavailable")
	}
	gen, err := s.store.Load(loadRetry, func(r io.Reader) error {
		var ckpt replay.Snapshot
		if err := json.NewDecoder(r).Decode(&ckpt); err != nil {
			return fmt.Errorf("decode: %v: %w", err, checkpoint.ErrCorrupt)
		}
		if err := ckpt.Validate(replayConfig(s.cfg), s.home.Env.K()); err != nil {
			return err
		}
		if err := s.sys.LoadQ(bytes.NewReader(ckpt.Q)); err != nil {
			return fmt.Errorf("load q: %v: %w", err, checkpoint.ErrCorrupt)
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.cfg.Logf("jarvisd: watchdog rolled Q back to checkpoint generation %d", gen)
	return nil
}
