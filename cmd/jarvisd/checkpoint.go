package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"jarvis/internal/checkpoint"
)

// checkpointVersion guards the on-disk format; bump on layout changes.
const checkpointVersion = 1

// checkpointFile is the daemon's on-disk state: the training configuration
// it was produced under (so a restarted daemon can detect mismatches and
// retrain), the learned P_safe, the trained Q function, and the running
// violation count.
type checkpointFile struct {
	Version      int             `json:"version"`
	Seed         int64           `json:"seed"`
	LearningDays int             `json:"learningDays"`
	Episodes     int             `json:"episodes"`
	Violations   int             `json:"violations"`
	Table        json.RawMessage `json:"table"`
	Q            json.RawMessage `json:"q"`
}

// loadRetry is the startup restore policy: a few quick attempts absorb a
// checkpoint that is mid-rename or on briefly flaky storage.
var loadRetry = checkpoint.LoadOptions{Tries: 3, Backoff: 25 * time.Millisecond}

// saveCheckpoint atomically persists the daemon state. Safe to call from
// any goroutine; it takes the state lock.
func (s *server) saveCheckpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveCheckpointLocked()
}

// saveCheckpointLocked is saveCheckpoint for callers already holding s.mu.
func (s *server) saveCheckpointLocked() error {
	var table, q bytes.Buffer
	if err := s.sys.SaveTable(&table); err != nil {
		mCkptSaveFailures.Inc()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := s.sys.SaveQ(&q); err != nil {
		mCkptSaveFailures.Inc()
		return fmt.Errorf("checkpoint: %w", err)
	}
	ckpt := checkpointFile{
		Version:      checkpointVersion,
		Seed:         s.cfg.Seed,
		LearningDays: s.cfg.LearningDays,
		Episodes:     s.cfg.Episodes,
		Violations:   s.violations,
		Table:        table.Bytes(),
		Q:            q.Bytes(),
	}
	if err := checkpoint.WriteAtomic(s.cfg.CheckpointPath, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(&ckpt)
	}); err != nil {
		mCkptSaveFailures.Inc()
		return err
	}
	mCkptSaves.Inc()
	s.lastCkpt.Store(time.Now().UnixNano())
	return nil
}

// restoreCheckpoint rebuilds the trained system from cfg.CheckpointPath
// into assets.sys, skipping optimizer training. Any failure — missing
// file, corrupt JSON, version or configuration mismatch, unloadable table
// or Q — is returned so the caller can fall back to fresh training.
func restoreCheckpoint(cfg serverConfig, assets *learningAssets, violations *int) error {
	var ckpt checkpointFile
	if err := checkpoint.Load(cfg.CheckpointPath, loadRetry, func(r io.Reader) error {
		ckpt = checkpointFile{}
		return json.NewDecoder(r).Decode(&ckpt)
	}); err != nil {
		return err
	}
	if ckpt.Version != checkpointVersion {
		return fmt.Errorf("checkpoint: version %d, want %d", ckpt.Version, checkpointVersion)
	}
	if ckpt.Seed != cfg.Seed || ckpt.LearningDays != cfg.LearningDays || ckpt.Episodes != cfg.Episodes {
		return fmt.Errorf("checkpoint: trained with seed=%d days=%d episodes=%d, daemon wants seed=%d days=%d episodes=%d",
			ckpt.Seed, ckpt.LearningDays, ckpt.Episodes, cfg.Seed, cfg.LearningDays, cfg.Episodes)
	}
	if len(ckpt.Table) == 0 || len(ckpt.Q) == 0 {
		return fmt.Errorf("checkpoint: missing table or Q payload")
	}
	if err := assets.sys.LoadTable(bytes.NewReader(ckpt.Table)); err != nil {
		return fmt.Errorf("checkpoint table: %w", err)
	}
	if err := assets.sys.Restore(assets.simCfg, assets.trainCfg, bytes.NewReader(ckpt.Q)); err != nil {
		return err
	}
	*violations = ckpt.Violations
	return nil
}
