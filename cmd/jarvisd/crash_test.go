package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"jarvis/internal/replay"
)

// The SIGKILL crash harness: a real child daemon process is killed with no
// warning mid-online-training, then a successor boots on the victim's
// checkpoint directory and WAL. The recovered daemon must land in exactly
// the training state the victim died in — the same state a control daemon
// reaches by processing the same traffic without ever crashing.

// crashChildEnv carries the victim's working directory; its presence turns
// TestJarvisdChildProcess from a skip into the victim's body.
const crashChildEnv = "JARVISD_CRASH_CHILD_DIR"

// crashFollowEnv, when also set, starts the child as a hot standby
// following the primary at that address — the follower half of the
// failover harness. It self-promotes after two seconds of primary
// silence and exposes the debug listener so the harness can hit
// /debug/replay on the promoted daemon.
const crashFollowEnv = "JARVISD_FOLLOW_ADDR"

// TestJarvisdChildProcess is not a standalone test: it is the victim
// process the crash harness re-execs (test binary + -test.run). It serves
// a durable daemon and then blocks until the parent SIGKILLs it.
func TestJarvisdChildProcess(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("crash-harness victim body; driven by TestCrashRecoverySIGKILL")
	}
	cfg := durableConfig(dir)
	if fa := os.Getenv(crashFollowEnv); fa != "" {
		cfg.FollowAddr = fa
		cfg.PromoteAfter = 2 * time.Second
		cfg.DebugAddr = "127.0.0.1:0"
	}
	srv, err := newServer(cfg)
	if err != nil {
		fmt.Printf("JARVISD_ERR=%v\n", err)
		os.Exit(1)
	}
	if err := srv.listen("127.0.0.1:0"); err != nil {
		fmt.Printf("JARVISD_ERR=%v\n", err)
		os.Exit(1)
	}
	fmt.Printf("JARVISD_ADDR=%s\n", srv.Addr())
	if da := srv.DebugAddr(); da != "" {
		fmt.Printf("JARVISD_DEBUG=%s\n", da)
	}
	select {} // hold the daemon up; the only way out is SIGKILL
}

func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness re-execs the test binary")
	}
	const (
		preCrash  = 48 // enough accepted transitions for real learn steps
		postCrash = 12 // recovered life must stay in lockstep with control
	)
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=^TestJarvisdChildProcess$", "-test.count=1")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start victim: %v", err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	var addr string
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		if v, ok := strings.CutPrefix(line, "JARVISD_ADDR="); ok {
			addr = v
			break
		}
		if v, ok := strings.CutPrefix(line, "JARVISD_ERR="); ok {
			t.Fatalf("victim failed to start: %s", v)
		}
	}
	if addr == "" {
		t.Fatalf("victim exited without announcing an address (scan err: %v)", scanner.Err())
	}

	// Drive acknowledged traffic into the victim. Every response arrives
	// only after the event is applied and journaled (fsync-per-record), so
	// acked means durable.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial victim: %v", err)
	}
	enc, dec := json.NewEncoder(conn), json.NewDecoder(conn)
	for i := 0; i < preCrash; i++ {
		req := eventScript[i%len(eventScript)]
		if resp := roundTrip(t, enc, dec, req); resp.Error != "" {
			t.Fatalf("victim event %d: %s", i, resp.Error)
		}
		// Interleave served recommendations so the WAL records a full
		// decision day — the post-crash replay verification re-executes
		// the policy at each one.
		if i%4 == 3 {
			if resp := roundTrip(t, enc, dec, request{Op: "recommend"}); !resp.OK {
				t.Fatalf("victim recommend after event %d: %s", i, resp.Error)
			}
		}
	}
	want := roundTrip(t, enc, dec, request{Op: "learnstate"})
	if !want.OK {
		t.Fatalf("victim learnstate: %s", want.Error)
	}
	if want.LearnSteps == 0 {
		t.Fatal("victim ran no learn steps; the crash would prove nothing")
	}

	// SIGKILL: no signal handler, no final checkpoint, no WAL reset.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill victim: %v", err)
	}
	cmd.Wait()
	conn.Close()

	// Before the successor reopens (and appends to) the victim's
	// artifacts, the offline engine must verify the recorded day exactly
	// as it died on disk. Every acked event is journaled, but the decision
	// log buffers writes — the active file's tail went down with the
	// process, and only rotation-sealed files are trustworthy. Those must
	// still verify bit for bit under AllowTruncatedTail.
	vcfg := durableConfig(dir)
	rep, err := replay.Verify(replay.VerifyOptions{
		Config:             replayConfig(vcfg),
		Source:             verifySource(vcfg),
		DecisionLog:        vcfg.DecisionLogPath,
		AllowTruncatedTail: true,
	})
	if err != nil {
		t.Fatalf("post-crash verify: %v", err)
	}
	if !rep.Match {
		t.Fatalf("victim's recorded decisions diverge from replay: %+v", rep.Divergence)
	}
	if rep.Compared == 0 {
		t.Fatal("no sealed decisions survived the crash; rotation is not covering the run")
	}

	// The successor boots on the victim's directories: restore the
	// post-training checkpoint, then replay the WAL.
	successor, err := newServer(durableConfig(dir))
	if err != nil {
		t.Fatalf("successor: %v", err)
	}
	defer successor.Close()
	if !successor.restored {
		t.Fatal("successor trained fresh; the victim's checkpoint is unusable")
	}
	assertSameLearnState(t, want, learnState(t, successor))

	// A control daemon that never crashed, fed the identical traffic,
	// must agree — before and after both keep living.
	control, err := newServer(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatalf("control: %v", err)
	}
	defer control.Close()
	feedEvents(t, control, preCrash)
	assertSameLearnState(t, learnState(t, control), learnState(t, successor))

	feedEvents(t, successor, postCrash)
	feedEvents(t, control, postCrash)
	assertSameLearnState(t, learnState(t, control), learnState(t, successor))
}
