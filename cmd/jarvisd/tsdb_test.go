package main

import (
	"encoding/json"
	"math"
	"net/url"
	"testing"
	"time"
)

// TestTSDBEndpointAndSLOParity is the metric-history acceptance test: the
// daemon appends snapshots to the on-disk store, /debug/tsdb serves range
// queries over labeled series, and a burn rate recomputed from a
// /debug/tsdb delta matches what the SLO tracker published — both read
// the same window edges from the same store.
func TestTSDBEndpointAndSLOParity(t *testing.T) {
	srv := startDebugTestServer(t, serverConfig{
		Seed: 1, LearningDays: 2, Episodes: 2,
		HealthInterval: 20 * time.Millisecond,
		TSDBDir:        t.TempDir(),
		TSInterval:     20 * time.Millisecond,
	})
	if srv.ts == nil {
		t.Fatal("tsdb did not open")
	}

	// A baseline point must land before the traffic so the windowed delta
	// sees the increase. The registry is process-global, so the unsafe
	// counter may already be nonzero from other tests — everything below
	// is relative to this baseline.
	waitUntil(t, 10*time.Second, "baseline tsdb point", func() bool {
		return srv.ts.Stats().Points >= 1
	})
	base, _ := srv.ts.Latest()
	baseUnsafe := base.Counters["jarvisd.events.unsafe"]

	for i := 0; i < 7; i++ {
		if resp := srv.handle(request{Op: "recommend"}); !resp.OK {
			t.Fatalf("recommend: %+v", resp)
		}
	}
	// Powering off the door sensor is never natural, so P_safe flags it.
	// Toggle it back on between denials (off→off is a no-op the audit
	// passes): two unsafe events put the safety-violations budget
	// objective at a nonzero burn (2/5), which is what makes the parity
	// check non-trivial.
	unsafeEvents := 0
	for i := 0; i < 2; i++ {
		resp := srv.handle(request{Op: "event", Device: "door-sensor", Action: "power_off"})
		if !resp.OK {
			t.Fatalf("sensor-off: %+v", resp)
		}
		if resp.Unsafe {
			unsafeEvents++
		}
		if resp := srv.handle(request{Op: "event", Device: "door-sensor", Action: "power_on"}); !resp.OK {
			t.Fatalf("sensor-on: %+v", resp)
		}
	}
	if unsafeEvents == 0 {
		t.Fatal("no event was flagged unsafe; the parity check would be trivial")
	}

	// Wait for a post-traffic point.
	waitUntil(t, 10*time.Second, "post-traffic tsdb point", func() bool {
		p, ok := srv.ts.Latest()
		return ok && p.Counters["jarvisd.events.unsafe"] >= baseUnsafe+int64(unsafeEvents)
	})

	// Index: store footprint plus the labeled series the snapshots carry.
	code, body := httpGet(t, srv, "/debug/tsdb")
	if code != 200 {
		t.Fatalf("/debug/tsdb status = %d: %s", code, body)
	}
	var idx tsdbIndex
	if err := json.Unmarshal(body, &idx); err != nil {
		t.Fatalf("/debug/tsdb is not valid JSON: %v", err)
	}
	if idx.Stats.Points < 2 {
		t.Fatalf("store has %d points, want >= 2", idx.Stats.Points)
	}
	wantSeries := `jarvisd.requests{op="recommend"}`
	found := false
	for _, s := range idx.Series {
		if s == wantSeries {
			found = true
		}
	}
	if !found {
		t.Fatalf("series index missing %s:\n%v", wantSeries, idx.Series)
	}

	query := func(series, fn string) tsdbQuery {
		t.Helper()
		code, body := httpGet(t, srv,
			"/debug/tsdb?series="+url.QueryEscape(series)+"&fn="+fn+"&window=10m")
		if code != 200 {
			t.Fatalf("query %s %s: status %d: %s", series, fn, code, body)
		}
		var q tsdbQuery
		if err := json.Unmarshal(body, &q); err != nil {
			t.Fatalf("query %s %s: bad JSON: %v", series, fn, err)
		}
		return q
	}

	// A labeled series answers range queries by its flat name.
	if q := query(wantSeries, "delta"); !q.OK || q.Value < 7 {
		t.Errorf("delta(%s) = %+v, want ok with value >= 7", wantSeries, q)
	}
	if q := query(wantSeries, "rate"); !q.OK || q.Value <= 0 {
		t.Errorf("rate(%s) = %+v, want ok with a positive rate", wantSeries, q)
	}
	if q := query("jarvisd.request.latency", "p99"); !q.OK || q.Value <= 0 {
		t.Errorf("p99(jarvisd.request.latency) = %+v, want ok with a positive quantile", q)
	}
	if q := query(wantSeries, "raw"); !q.OK || len(q.Samples) < 2 {
		t.Errorf("raw(%s) = %+v, want >= 2 samples", wantSeries, q)
	}

	// Parity: the safety-violations objective is windowed-delta / budget
	// (budget 5). Traffic has stopped, so the unsafe counter is flat and
	// the two reads — the HTTP range query and the tracker's report —
	// resolve deltas over the same stored history.
	unsafeDelta := query("jarvisd.events.unsafe", "delta")
	if !unsafeDelta.OK || unsafeDelta.Value < float64(unsafeEvents) {
		t.Fatalf("delta(jarvisd.events.unsafe) = %+v, want >= %d", unsafeDelta, unsafeEvents)
	}
	var burn float64
	foundObj := false
	for _, st := range srv.slo.Report().Objectives {
		if st.Name == "safety-violations" {
			burn, foundObj = st.BurnRate, true
		}
	}
	if !foundObj {
		t.Fatal("safety-violations objective missing from the SLO report")
	}
	if want := unsafeDelta.Value / 5; math.Abs(burn-want) > 1e-9 {
		t.Errorf("SLO burn = %v but tsdb recomputation = %v; the two windows disagree", burn, want)
	}

	// /healthz surfaces the store footprint and the registry cardinality.
	code, body = httpGet(t, srv, "/healthz")
	var h healthStatus
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("/healthz is not valid JSON: %v", err)
	}
	if h.TSDB == nil || h.TSDB.Points < 2 || h.TSDB.SizeBytes <= 0 {
		t.Errorf("/healthz tsdb block = %+v, want a live footprint", h.TSDB)
	}
	if h.TelemetrySeries <= 0 {
		t.Errorf("/healthz telemetrySeries = %d, want > 0", h.TelemetrySeries)
	}
}

// TestTSDBDisabledEndpoint: without -tsdb the endpoint 404s with a hint
// instead of panicking.
func TestTSDBDisabledEndpoint(t *testing.T) {
	srv := startDebugTestServer(t, serverConfig{Seed: 1, LearningDays: 2, Episodes: 2})
	code, body := httpGet(t, srv, "/debug/tsdb")
	if code != 404 {
		t.Fatalf("/debug/tsdb without a store: status %d: %s", code, body)
	}
}
