package main

import (
	"bufio"
	"io"
	"net"
	"time"

	"jarvis"
	"jarvis/internal/device"
	"jarvis/internal/replay"
	"jarvis/internal/trace"
	"jarvis/internal/wire"
)

// maxBatch caps how many already-buffered requests one lock acquisition
// serves. Batching amortizes the state-lock handoff and the response
// write; consecutive recommend requests inside a batch additionally share
// one policy evaluation (the state cannot change between them).
const maxBatch = 64

// serveBinary runs the binary-protocol loop for one connection: verify the
// two-byte hello, ack, then read frames — blocking for the first request
// and coalescing whatever else is already buffered into one batch served
// under a single lock acquisition and answered with a single write.
func (s *server) serveBinary(conn net.Conn, br *bufio.Reader) {
	var hello [2]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		return
	}
	if hello[0] != wire.Magic || hello[1] != wire.Version {
		// Unknown protocol revision: close rather than guess; the client
		// falls back to JSON.
		return
	}
	if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
		return
	}
	if _, err := conn.Write(wire.AppendAck(nil)); err != nil {
		return
	}
	r := wire.NewReader(br)
	reqs := make([]wire.Request, 0, maxBatch)
	out := make([]byte, 0, 4<<10)
	for {
		if err := conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)); err != nil {
			return
		}
		frame, err := r.ReadFrame()
		if err != nil {
			return
		}
		req, err := wire.ParseRequest(frame)
		if err != nil {
			return
		}
		reqs = append(reqs[:0], req)
		for len(reqs) < maxBatch {
			frame, ok, err := r.TryReadFrame()
			if err != nil {
				return
			}
			if !ok {
				break
			}
			req, err := wire.ParseRequest(frame)
			if err != nil {
				return
			}
			reqs = append(reqs, req)
		}
		out = s.handleBatch(reqs, out[:0])
		if err := conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)); err != nil {
			return
		}
		if _, err := conn.Write(out); err != nil {
			return
		}
		select {
		case <-s.stop:
			return
		default:
		}
	}
}

// handleBatch serves one coalesced batch: admission control sees the whole
// batch at once, the state lock is taken once, and responses are appended
// into a single output buffer. Per-request telemetry, tracing, journaling,
// and decision logging are identical to the JSON path.
func (s *server) handleBatch(reqs []wire.Request, out []byte) []byte {
	depth := s.inflight.Add(int64(len(reqs)))
	defer s.inflight.Add(-int64(len(reqs)))
	mQueueDepth.SetInt(depth)
	if len(reqs) > 1 {
		mWireCoalesced.Add(int64(len(reqs) - 1))
	}
	var t0 time.Time
	if mRequestLatency.Enabled() {
		t0 = time.Now()
	}
	s.mu.Lock()
	// One minute-of-day per batch: requests coalesced into the same lock
	// acquisition are served at the same instant, which is what makes
	// consecutive recommend evaluations shareable.
	minute := s.minuteOfDay(time.Now())
	var rec jarvis.Decision
	haveRec := false
	for _, req := range reqs {
		if c, ok := mBinRequests[req.Op]; ok {
			c.Inc()
		} else {
			mRequestsUnknown.Inc()
		}
		sp := s.tracer.Start(binOpSpanName(req.Op))
		if sp != nil {
			sp.AnnotateInt("depth", depth)
			sp.AnnotateInt("batch", int64(len(reqs)))
		}
		if req.Op == wire.OpEvent || req.Op == wire.OpCheckpoint {
			// The environment (or the policy) is about to change; any
			// memoized recommendation is stale.
			haveRec = false
		}
		out = s.binDispatchLocked(req, depth, minute, sp, &rec, &haveRec, out)
		if sp != nil {
			sp.End()
		}
	}
	s.mu.Unlock()
	if !t0.IsZero() {
		mRequestLatency.Observe(time.Since(t0))
	}
	return out
}

// binDispatchLocked serves one binary request under the state lock,
// appending the framed response to out. rec/haveRec memoize the batch's
// recommend evaluation: consecutive recommends at the same state and
// minute are deterministic, so the composition runs once and each request
// still journals and logs its own served decision.
func (s *server) binDispatchLocked(req wire.Request, depth int64, minute int,
	sp *trace.Span, rec *jarvis.Decision, haveRec *bool, out []byte) []byte {
	e := s.home.Env
	resp := wire.Response{Minute: minute}

	switch req.Op {
	case wire.OpState:
		resp.Flags = wire.FlagOK
		resp.Violations = s.violations
		resp.State = s.wireStateIDs()

	case wire.OpEvent:
		if s.following.Load() {
			resp.Err = append(resp.Err, errFollowerReadOnly...)
			break
		}
		*haveRec = false
		di := int(req.Device)
		if di < 0 || di >= e.K() {
			resp.Err = append(resp.Err, "unknown device index"...)
			break
		}
		unsafe, err := s.applyEvent(sp, depth, minute, di, device.ActionID(req.Action))
		if err != nil {
			resp.Err = append(resp.Err, err.Error()...)
			break
		}
		resp.Flags = wire.FlagOK
		if unsafe {
			resp.Flags |= wire.FlagUnsafe
		}
		resp.Violations = s.violations
		resp.State = s.wireStateIDs()

	case wire.OpRecommend:
		if s.shedRecommend(depth) {
			s.shedRecommends++
			mShedRecommends.Inc()
			resp.Flags = wire.FlagBusy
			resp.RetryAfterMs = 250
			resp.Err = append(resp.Err, "overloaded: recommendation shed"...)
			break
		}
		if s.following.Load() {
			// Read-only replica serve: evaluate against the replica policy,
			// but the decision stream (journal, log, counters) belongs to
			// the primary, so nothing is memoized or recorded.
			d, err := s.replicaRecommend(sp, minute)
			if err != nil {
				resp.Err = append(resp.Err, err.Error()...)
				break
			}
			resp.Flags = wire.FlagOK
			resp.Q = d.Value
			resp.Degraded = s.sys.DegradedRecommendations()
			resp.Action = s.wireActionIDs(d.Action)
			break
		}
		// The memoized evaluation is reused only when nothing needs the
		// full pipeline to run: a sampled request re-evaluates so its span
		// tree covers the selection, and a decision-logging daemon
		// re-evaluates so every served recommendation has its own audit
		// record. The result is bit-identical either way.
		if !*haveRec || sp != nil || s.decisions != nil {
			d, err := s.recommendOne(sp, minute)
			if err != nil {
				*haveRec = false
				resp.Err = append(resp.Err, err.Error()...)
				break
			}
			*rec, *haveRec = d, true
		} else {
			// Reuse the batch's evaluation, but still journal this served
			// recommendation like any other — replay regenerates one
			// decision per journaled record.
			s.recommendsServed++
			s.journal(sp, replay.Record{K: replay.KindRecommend, N: s.recommendsServed, M: minute})
			mWireSharedEvals.Inc()
		}
		resp.Flags = wire.FlagOK
		resp.Q = rec.Value
		resp.Degraded = s.sys.DegradedRecommendations()
		resp.Action = s.wireActionIDs(rec.Action)

	case wire.OpViolations:
		resp.Flags = wire.FlagOK
		resp.Violations = s.violations

	case wire.OpCheckpoint:
		if s.following.Load() {
			resp.Err = append(resp.Err, errFollowerReadOnly...)
			break
		}
		if s.store == nil {
			resp.Err = append(resp.Err, "daemon started without -checkpoint"...)
			break
		}
		if err := s.saveCheckpointLocked(); err != nil {
			resp.Err = append(resp.Err, err.Error()...)
			break
		}
		resp.Flags = wire.FlagOK

	case wire.OpLearnState:
		fp, err := s.sys.QFingerprint()
		if err != nil {
			resp.Err = append(resp.Err, err.Error()...)
			break
		}
		resp.Flags = wire.FlagOK | wire.FlagHasLearn
		resp.Violations = s.violations
		resp.ReplaySize = s.sys.Agent().ReplayBuffer().Len()
		resp.Events = s.eventsIngested
		resp.OnlineSteps = s.onlineSteps
		resp.LearnSteps = s.learnSteps
		resp.Recommends = s.recommendsServed
		resp.QSum = append(resp.QSum, fp...)

	default:
		resp.Err = append(resp.Err, "unknown op"...)
	}
	return wire.AppendResponse(out, &resp)
}

// wireStateIDs copies the current state into the reusable binary scratch
// buffer (guarded by mu).
func (s *server) wireStateIDs() []uint8 {
	if cap(s.wireState) < len(s.state) {
		s.wireState = make([]uint8, len(s.state))
	}
	s.wireState = s.wireState[:len(s.state)]
	for i, st := range s.state {
		s.wireState[i] = uint8(st)
	}
	return s.wireState
}

// wireActionIDs copies a composite action into the reusable binary scratch
// buffer (guarded by mu).
func (s *server) wireActionIDs(a []device.ActionID) []int16 {
	if cap(s.wireAction) < len(a) {
		s.wireAction = make([]int16, len(a))
	}
	s.wireAction = s.wireAction[:len(a)]
	for i, act := range a {
		s.wireAction[i] = int16(act)
	}
	return s.wireAction
}
