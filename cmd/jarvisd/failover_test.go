package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"jarvis/internal/fault"
	"jarvis/internal/replay"
	"jarvis/internal/wal"
)

// The failover harness extends the SIGKILL crash drill across two
// processes: a real primary is killed with no warning while a hot standby
// streams its WAL, the standby must promote itself, and the promoted
// daemon must land within a bounded lost tail of a control daemon that
// processed the same traffic without any crash — with its own durability
// artifacts verifying bit for bit, exactly like a primary's would.

// childDaemon is one re-exec'd jarvisd victim (see TestJarvisdChildProcess).
type childDaemon struct {
	cmd   *exec.Cmd
	addr  string
	debug string
}

// spawnChildDaemon re-execs the test binary as a durable daemon rooted at
// dir. A non-empty followAddr starts it as a hot standby of that primary
// (2s auto-promote, debug listener on) and waits for the debug banner too.
func spawnChildDaemon(t *testing.T, dir, followAddr string) *childDaemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestJarvisdChildProcess$", "-test.count=1")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	if followAddr != "" {
		cmd.Env = append(cmd.Env, crashFollowEnv+"="+followAddr)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child daemon: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	c := &childDaemon{cmd: cmd}
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		if v, ok := strings.CutPrefix(line, "JARVISD_ADDR="); ok {
			c.addr = v
			if followAddr == "" {
				break // a primary child prints no debug banner
			}
			continue
		}
		if v, ok := strings.CutPrefix(line, "JARVISD_DEBUG="); ok {
			c.debug = v
			break
		}
		if v, ok := strings.CutPrefix(line, "JARVISD_ERR="); ok {
			t.Fatalf("child daemon failed to start: %s", v)
		}
	}
	if c.addr == "" {
		t.Fatalf("child daemon exited without announcing an address (scan err: %v)", scanner.Err())
	}
	return c
}

// sigkill drops the child with no warning and reaps it.
func (c *childDaemon) sigkill(t *testing.T) {
	t.Helper()
	if err := c.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill child daemon: %v", err)
	}
	c.cmd.Wait()
}

// dialJSON opens a persistent JSON-protocol connection.
func dialJSON(t *testing.T, addr string) (*json.Encoder, *json.Decoder, func()) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	return json.NewEncoder(conn), json.NewDecoder(conn), func() { conn.Close() }
}

// healthzReplication is the slice of /healthz the failover tests assert on.
type healthzReplication struct {
	Role        string `json:"role"`
	Replication *struct {
		Role       string  `json:"role"`
		FollowAddr string  `json:"followAddr"`
		Connected  bool    `json:"connected"`
		LagRecords float64 `json:"lagRecords"`
	} `json:"replication"`
}

func getHealthzReplication(t *testing.T, debugAddr string) healthzReplication {
	t.Helper()
	resp, err := http.Get("http://" + debugAddr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var hz healthzReplication
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	return hz
}

// TestFailoverPromotionSIGKILL is the two-process chaos drill the
// replication subsystem exists for: kill the primary mid-load, require the
// standby to promote itself, and hold the promoted daemon to the same
// standard as a crash-recovered primary — its learning state must match a
// never-crashed control up to a bounded lost tail (at most the unshipped
// records, and never a torn event/transition pair applied halfway), and
// deterministic replay of its own WAL must regenerate its own decision log
// bit for bit.
func TestFailoverPromotionSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("failover harness re-execs the test binary twice")
	}
	const (
		preCrash    = 48 // replicated while both sides are healthy
		lostTail    = 8  // acked by the primary racing the kill
		postPromote = 12 // promoted life must stay in lockstep with control
	)
	primaryDir, standbyDir := t.TempDir(), t.TempDir()

	primary := spawnChildDaemon(t, primaryDir, "")
	standby := spawnChildDaemon(t, standbyDir, primary.addr)
	if standby.debug == "" {
		t.Fatal("standby announced no debug address; /debug/replay is unreachable")
	}

	// Phase 1: acked traffic into the primary while the standby streams.
	penc, pdec, pclose := dialJSON(t, primary.addr)
	defer pclose()
	for i := 0; i < preCrash; i++ {
		if resp := roundTrip(t, penc, pdec, eventScript[i%len(eventScript)]); resp.Error != "" {
			t.Fatalf("primary event %d: %s", i, resp.Error)
		}
		if i%4 == 3 {
			if resp := roundTrip(t, penc, pdec, request{Op: "recommend"}); !resp.OK {
				t.Fatalf("primary recommend after event %d: %s", i, resp.Error)
			}
		}
	}
	want := roundTrip(t, penc, pdec, request{Op: "learnstate"})
	if !want.OK {
		t.Fatalf("primary learnstate: %s", want.Error)
	}
	if want.LearnSteps == 0 {
		t.Fatal("primary ran no learn steps; the failover would prove nothing")
	}

	// The standby must converge onto the primary's exact training state:
	// same counters, same replay buffer, same Q fingerprint.
	fenc, fdec, fclose := dialJSON(t, standby.addr)
	defer fclose()
	var got response
	waitUntil(t, 30*time.Second, "standby to catch up with the primary", func() bool {
		got = roundTrip(t, fenc, fdec, request{Op: "learnstate"})
		return got.OK && got.Events == want.Events &&
			got.OnlineSteps == want.OnlineSteps && got.Recommends == want.Recommends
	})
	assertSameLearnState(t, want, got)
	if got.Role != roleFollower {
		t.Fatalf("standby role = %q, want %q", got.Role, roleFollower)
	}

	// While following: writes bounce, reads serve from the replica Q.
	if resp := roundTrip(t, fenc, fdec, eventScript[0]); resp.Error != errFollowerReadOnly {
		t.Fatalf("standby accepted a write while following: %+v", resp)
	}
	if resp := roundTrip(t, fenc, fdec, request{Op: "recommend"}); !resp.OK || resp.Role != roleFollower {
		t.Fatalf("standby read-only recommend: %+v", resp)
	}
	if hz := getHealthzReplication(t, standby.debug); hz.Role != roleFollower ||
		hz.Replication == nil || !hz.Replication.Connected {
		t.Fatalf("standby /healthz replication block: %+v", hz)
	}

	// Phase 2: the lost tail. More acked events race the kill — the
	// standby holds whatever the shipper got out before the process died.
	for i := 0; i < lostTail; i++ {
		req := eventScript[(preCrash+i)%len(eventScript)]
		if resp := roundTrip(t, penc, pdec, req); resp.Error != "" {
			t.Fatalf("primary lost-tail event %d: %s", i, resp.Error)
		}
	}
	primary.sigkill(t)

	// Phase 3: automatic promotion (the child self-promotes after 2s of
	// primary silence).
	waitUntil(t, 30*time.Second, "standby to promote itself", func() bool {
		return roundTrip(t, fenc, fdec, request{Op: "state"}).Role == rolePrimary
	})
	promoted := roundTrip(t, fenc, fdec, request{Op: "learnstate"})
	if !promoted.OK {
		t.Fatalf("promoted learnstate: %s", promoted.Error)
	}
	k, m := promoted.Events, promoted.OnlineSteps

	// The lost tail is bounded: everything acked before the healthy
	// barrier survived, nothing beyond the kill exists, and the only legal
	// torn position is an event whose learning transition didn't ship
	// (the primary journals evt before txn).
	if k < preCrash || k > preCrash+lostTail {
		t.Fatalf("promoted daemon holds %d events, want %d..%d", k, preCrash, preCrash+lostTail)
	}
	if m != k && m != k-1 {
		t.Fatalf("incoherent lost tail: events=%d onlineSteps=%d (want steps = events or events-1)", k, m)
	}

	// Phase 4: a control daemon that never crashed, fed exactly the prefix
	// that survived. A positive queue cap lets the control reproduce the
	// torn case: pinning the inflight gauge sheds precisely one event's
	// learning ingestion, which is what a kill between the evt and txn
	// journal appends looks like.
	ccfg := durableConfig(t.TempDir())
	ccfg.MaxQueue = 64
	control, err := newServer(ccfg)
	if err != nil {
		t.Fatalf("control: %v", err)
	}
	defer control.Close()
	feedEvents(t, control, m)
	if k == m+1 {
		control.inflight.Store(int64(ccfg.MaxQueue))
		if resp := control.handle(eventScript[m%len(eventScript)]); resp.Error != "" {
			t.Fatalf("control torn event: %s", resp.Error)
		}
		control.inflight.Store(0)
	}
	assertSameLearnState(t, learnState(t, control), promoted)

	// Phase 5: the promoted daemon is a full primary — it takes writes and
	// stays in lockstep with the control through more shared traffic.
	for i := 0; i < postPromote; i++ {
		req := eventScript[(k+i)%len(eventScript)]
		if resp := roundTrip(t, fenc, fdec, req); resp.Error != "" {
			t.Fatalf("promoted daemon rejected event %d: %s", i, resp.Error)
		}
		if resp := control.handle(req); resp.Error != "" {
			t.Fatalf("control post-promotion event %d: %s", i, resp.Error)
		}
	}
	assertSameLearnState(t, learnState(t, control), roundTrip(t, fenc, fdec, request{Op: "learnstate"}))

	// Phase 6: deterministic replay on the promoted daemon's own artifacts
	// — the WAL it journaled while following plus everything after
	// promotion must regenerate its decision log bit for bit.
	resp, err := http.Get("http://" + standby.debug + "/debug/replay")
	if err != nil {
		t.Fatalf("promoted /debug/replay: %v", err)
	}
	var rep struct {
		Match    bool `json:"match"`
		Compared int  `json:"compared"`
	}
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("promoted /debug/replay decode: %v", err)
	}
	if resp.StatusCode != http.StatusOK || !rep.Match {
		t.Fatalf("promoted daemon's decisions diverge from replay: status=%d match=%v", resp.StatusCode, rep.Match)
	}
	if rep.Compared == 0 {
		t.Fatal("promoted replay verified nothing")
	}

	// Phase 7: kill the promoted daemon too and verify its artifacts
	// post-mortem, offline — the same check a crashed primary gets.
	standby.sigkill(t)
	vcfg := durableConfig(standbyDir)
	offline, err := replay.Verify(replay.VerifyOptions{
		Config:      replayConfig(vcfg),
		Source:      verifySource(vcfg),
		DecisionLog: vcfg.DecisionLogPath,
	})
	if err != nil {
		t.Fatalf("offline verify of promoted daemon: %v", err)
	}
	if !offline.Match {
		t.Fatalf("promoted daemon's recorded decisions diverge offline: %+v", offline.Divergence)
	}
	if offline.Compared == 0 {
		t.Fatal("offline verify compared nothing")
	}
}

// TestOperatorPromote drives the explicit promotion path in-process: a
// follower with automatic failover disabled serves read-only, bounces
// writes, and flips to a full primary on the promote op — staying in
// lockstep with the original primary afterwards.
func TestOperatorPromote(t *testing.T) {
	primary, err := newServer(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatalf("primary: %v", err)
	}
	defer primary.Close()
	if err := primary.listen("127.0.0.1:0"); err != nil {
		t.Fatalf("primary listen: %v", err)
	}

	fcfg := durableConfig(t.TempDir())
	fcfg.FollowAddr = primary.Addr()
	fcfg.PromoteAfter = -1 // never self-promote; only the operator may
	follower, err := newServer(fcfg)
	if err != nil {
		t.Fatalf("follower: %v", err)
	}
	defer follower.Close()

	const fed = 24
	feedEvents(t, primary, fed)
	want := learnState(t, primary)
	var got response
	waitUntil(t, 30*time.Second, "follower to catch up", func() bool {
		got = follower.handle(request{Op: "learnstate"})
		return got.OK && got.Events == want.Events && got.OnlineSteps == want.OnlineSteps
	})
	assertSameLearnState(t, want, got)
	if got.Role != roleFollower {
		t.Fatalf("follower role = %q, want %q", got.Role, roleFollower)
	}

	// Read-only surface: events and checkpoints bounce, recommends serve.
	if resp := follower.handle(eventScript[0]); resp.Error != errFollowerReadOnly {
		t.Fatalf("follower accepted an event: %+v", resp)
	}
	if resp := follower.handle(request{Op: "checkpoint"}); resp.Error != errFollowerReadOnly {
		t.Fatalf("follower accepted a checkpoint: %+v", resp)
	}
	if resp := follower.handle(request{Op: "recommend"}); !resp.OK || resp.Role != roleFollower {
		t.Fatalf("follower read-only recommend: %+v", resp)
	}

	// A primary has nothing to promote.
	if resp := primary.handle(request{Op: "promote"}); resp.Error == "" {
		t.Fatal("primary accepted a promote op")
	}
	if resp := follower.handle(request{Op: "promote"}); !resp.OK {
		t.Fatalf("promote op: %s", resp.Error)
	}
	waitUntil(t, 10*time.Second, "follower to finish promoting", func() bool {
		return follower.role() == rolePrimary
	})

	// Both daemons are now independent primaries at the same position;
	// identical further traffic must keep them identical.
	for i := 0; i < 8; i++ {
		req := eventScript[(fed+i)%len(eventScript)]
		if resp := follower.handle(req); resp.Error != "" {
			t.Fatalf("promoted follower event %d: %s", i, resp.Error)
		}
		if resp := primary.handle(req); resp.Error != "" {
			t.Fatalf("primary event %d: %s", i, resp.Error)
		}
	}
	assertSameLearnState(t, learnState(t, primary), learnState(t, follower))
}

// TestFollowerSurvivesTornJournalWrites aims the disk-fault injector at the
// follower's own journal: short writes tear its WAL appends mid-frame.
// Journal failures must degrade durability, never replication — the
// follower keeps applying the stream and converges on the primary's exact
// state — and whatever did reach its journal stays frame-intact behind the
// CRC (a torn tail ends iteration; it never leaks half a record).
func TestFollowerSurvivesTornJournalWrites(t *testing.T) {
	primary, err := newServer(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatalf("primary: %v", err)
	}
	defer primary.Close()
	if err := primary.listen("127.0.0.1:0"); err != nil {
		t.Fatalf("primary listen: %v", err)
	}

	disk := fault.NewDisk(fault.DiskShortWrite, 2<<10)
	fcfg := durableConfig(t.TempDir())
	fcfg.FollowAddr = primary.Addr()
	fcfg.PromoteAfter = -1
	fcfg.WALOpenFile = func(name string, flag int, perm os.FileMode) (wal.File, error) {
		f, err := os.OpenFile(name, flag, perm)
		if err != nil {
			return nil, err
		}
		return disk.Wrap(f), nil
	}
	follower, err := newServer(fcfg)
	if err != nil {
		t.Fatalf("follower: %v", err)
	}
	defer follower.Close()

	// First batch: converge. The initial snapshot may cover any prefix of
	// this traffic (adoption journals nothing), so nothing about the fault
	// can be asserted yet.
	feedEvents(t, primary, 24)
	catchUp := func(what string) response {
		t.Helper()
		want := learnState(t, primary)
		var got response
		waitUntil(t, 30*time.Second, what, func() bool {
			got = follower.handle(request{Op: "learnstate"})
			return got.OK && got.Events == want.Events && got.OnlineSteps == want.OnlineSteps
		})
		assertSameLearnState(t, want, got)
		return got
	}
	catchUp("follower to converge on the first batch")

	// Second batch: a caught-up follower is past snapshot seeding, so every
	// one of these records ships individually and hits the torn journal —
	// more bytes than the clean budget holds, guaranteeing the fault fires.
	for i := 0; i < 48; i++ {
		if resp := primary.handle(eventScript[(24+i)%len(eventScript)]); resp.Error != "" {
			t.Fatalf("primary event %d: %s", i, resp.Error)
		}
	}
	catchUp("follower to converge despite torn journal writes")
	if disk.Fired() == 0 {
		t.Fatal("disk fault never fired; the journal budget is too generous to prove anything")
	}

	// Every record a reader can see decodes; the torn append is invisible.
	cur, err := wal.OpenCursor(fcfg.WALDir)
	if err != nil {
		t.Fatalf("open cursor: %v", err)
	}
	defer cur.Close()
	n := 0
	for {
		rec, err := cur.Next()
		if errors.Is(err, io.EOF) || errors.Is(err, wal.ErrCorrupt) {
			break
		}
		if err != nil {
			t.Fatalf("cursor record %d: %v", n, err)
		}
		if _, derr := replay.DecodeRecord(rec); derr != nil {
			t.Fatalf("journal record %d is framed but undecodable: %v", n, derr)
		}
		n++
	}
	t.Logf("follower journal: %d intact records, %d torn appends", n, disk.Fired())
}
