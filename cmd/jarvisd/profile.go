package main

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"
)

// profiler automates the capture an operator would otherwise drive through
// /debug/pprof by hand: a CPU profile covering the first -profile-cpu-window
// of the process (startup training plus early serving), and a heap snapshot
// taken at shutdown. Both land in -profile-dir as cpu.pprof and heap.pprof,
// ready for `go tool pprof`.
type profiler struct {
	dir  string
	logf func(format string, args ...any)

	mu    sync.Mutex
	cpuF  *os.File
	timer *time.Timer
}

// startProfiler begins the capture. An empty dir returns nil; every method
// is nil-safe, so callers never branch on whether profiling is on.
func startProfiler(dir string, cpuWindow time.Duration, logf func(string, ...any)) *profiler {
	if dir == "" {
		return nil
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		logf("jarvisd: profile dir: %v", err)
		return nil
	}
	p := &profiler{dir: dir, logf: logf}
	f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	switch {
	case err != nil:
		logf("jarvisd: cpu profile: %v", err)
	case pprof.StartCPUProfile(f) != nil:
		logf("jarvisd: cpu profile already running; skipping capture")
		f.Close()
	default:
		p.cpuF = f
		if cpuWindow > 0 {
			p.timer = time.AfterFunc(cpuWindow, p.stopCPU)
		}
		logf("jarvisd: cpu profile started (%s, window %v)", f.Name(), cpuWindow)
	}
	return p
}

// stopCPU ends the CPU capture once; the window timer and Stop may race,
// so the second caller finds cpuF nil and returns.
func (p *profiler) stopCPU() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cpuF == nil {
		return
	}
	pprof.StopCPUProfile()
	name := p.cpuF.Name()
	if err := p.cpuF.Close(); err != nil {
		p.logf("jarvisd: cpu profile close: %v", err)
	} else {
		p.logf("jarvisd: cpu profile written to %s", name)
	}
	p.cpuF = nil
}

// Stop finishes any in-flight CPU capture and writes the shutdown heap
// snapshot.
func (p *profiler) Stop() {
	if p == nil {
		return
	}
	if p.timer != nil {
		p.timer.Stop()
	}
	p.stopCPU()
	path := filepath.Join(p.dir, "heap.pprof")
	f, err := os.Create(path)
	if err != nil {
		p.logf("jarvisd: heap profile: %v", err)
		return
	}
	runtime.GC() // heap profile reads stats as of the last collection
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		p.logf("jarvisd: heap profile: %v", err)
	}
	if err := f.Close(); err != nil {
		p.logf("jarvisd: heap profile close: %v", err)
	} else {
		p.logf("jarvisd: heap snapshot written to %s", path)
	}
}
