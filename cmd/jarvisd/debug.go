package main

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"jarvis/internal/compiled"
	"jarvis/internal/health"
	"jarvis/internal/replay"
	"jarvis/internal/rl"
	"jarvis/internal/telemetry"
	"jarvis/internal/trace"
	"jarvis/internal/tsdb"
)

// The debug listener is a second, HTTP-speaking socket so observability
// traffic (scrapes, health probes, profilers) never competes with the
// JSON-lines protocol on the main listener:
//
//	/metrics      one JSON telemetry snapshot (counters, gauges,
//	              histograms with p50/p95/p99, recent events); with
//	              ?format=prom or an Accept header preferring text/plain,
//	              the same registry in Prometheus text exposition format
//	/healthz      200 while healthy, 503 once any recommendation has
//	              degraded to the safe NoOp; reports the violation count
//	              and the age of the last checkpoint
//	/debug/replay        verify-mode deterministic replay of the daemon's
//	                     own WAL against its own decision log (200 on a
//	                     bit-identical regeneration, 409 with the first
//	                     divergence otherwise; needs -wal and
//	                     -log-decisions)
//	/debug/traces        recent sampled request traces as JSON lines
//	                     (?n= caps the count, ?sort=slowest ranks by
//	                     duration); /debug/traces/chrome re-exports them
//	                     as Chrome trace_event JSON for chrome://tracing
//	                     and Perfetto
//	/debug/tsdb          range queries over the on-disk metric history
//	                     (?series=&fn=rate|delta|p50|p95|p99|raw with
//	                     from/to or window; no params = index; needs
//	                     -tsdb)
//	/debug/vars   expvar, including the same telemetry snapshot
//	/debug/pprof  the standard Go profiler endpoints

// startDebug binds the observability endpoints on addr and serves them
// until Close. The handlers live on a private mux — never the HTTP
// DefaultServeMux — so tests can run many daemons in one process.
func (s *server) startDebug(addr string) error {
	telemetry.PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/replay", s.handleReplay)
	mux.HandleFunc("/debug/alerts", s.handleAlerts)
	mux.HandleFunc("/debug/slo", s.handleSLO)
	mux.HandleFunc("/debug/traces", s.handleTraces)
	mux.HandleFunc("/debug/traces/chrome", s.handleTracesChrome)
	mux.HandleFunc("/debug/tsdb", s.handleTSDB)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.debug = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.debugLn = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if err := s.debug.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.cfg.Logf("jarvisd: debug server: %v", err)
		}
	}()
	return nil
}

// DebugAddr returns the bound debug address ("" when disabled).
func (s *server) DebugAddr() string {
	if s.debugLn == nil {
		return ""
	}
	return s.debugLn.Addr().String()
}

// handleMetrics serves the process-wide registry, negotiating between the
// native JSON snapshot (default) and Prometheus text exposition: either
// ?format=prom|json wins outright, else an Accept header that mentions
// text/plain without application/json selects the Prometheus form.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := telemetry.Default.WritePrometheus(w); err != nil {
			s.cfg.Logf("jarvisd: metrics write: %v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(telemetry.Default.Snapshot()); err != nil {
		s.cfg.Logf("jarvisd: metrics encode: %v", err)
	}
}

// wantsPrometheus decides the /metrics representation: explicit ?format=
// first, Accept header second, JSON as the fallback.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}

// handleTraces serves the sampled-trace ring as JSON lines, newest first.
// ?n= caps how many; ?sort=slowest ranks by duration instead of recency.
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	var traces []*trace.TraceData
	if r.URL.Query().Get("sort") == "slowest" {
		traces = s.tracer.Ring().Slowest(n)
	} else {
		traces = s.tracer.Ring().Recent(n)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := trace.WriteJSONL(w, traces); err != nil {
		s.cfg.Logf("jarvisd: traces write: %v", err)
	}
}

// handleTracesChrome re-exports the ring in Chrome trace_event format,
// loadable directly in chrome://tracing or https://ui.perfetto.dev.
func (s *server) handleTracesChrome(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="jarvisd-trace.json"`)
	if err := trace.WriteChrome(w, s.tracer.Ring().Recent(n)); err != nil {
		s.cfg.Logf("jarvisd: chrome trace write: %v", err)
	}
}

// healthStatus is the /healthz body.
type healthStatus struct {
	Status string `json:"status"` // "ok" | "degraded"
	// Role is the replication role: "primary" (the default) or "follower"
	// (started with -follow and not yet promoted). Replication carries the
	// standby's stream position, lag, and promotion timing; absent on a
	// daemon never configured to follow.
	Role        string             `json:"role"`
	Replication *replicationStatus `json:"replication,omitempty"`
	// DegradedRecommendations counts recommendations that fell back to the
	// safe NoOp (non-finite Q values or a failed FSM transition check). Any
	// nonzero value flips the endpoint to 503: the optimizer is no longer
	// trustworthy and an operator should restore a checkpoint or retrain.
	DegradedRecommendations int  `json:"degradedRecommendations"`
	Violations              int  `json:"violations"`
	RestoredFromCheckpoint  bool `json:"restoredFromCheckpoint"`
	// CheckpointAgeSec reports how stale the on-disk checkpoint is (only
	// when checkpointing is enabled). Informational: the daemon checkpoints
	// on demand and on shutdown, so age alone is not a failure.
	CheckpointAgeSec float64 `json:"checkpointAgeSec,omitempty"`
	// Watchdog reports divergence trips and generation rollbacks. A
	// nonzero rollback count with zero degraded recommendations means the
	// self-healing path worked: the optimizer diverged and was restored
	// without ever serving from the broken Q function.
	Watchdog rl.WatchdogStats `json:"watchdog"`
	// Admission control, as seen at report time.
	QueueDepth     int64 `json:"queueDepth"`
	ShedEvents     int   `json:"shedEvents,omitempty"`
	ShedRecommends int   `json:"shedRecommends,omitempty"`
	// Online learning progression (events applied, transitions accepted,
	// learn steps run).
	Events      int `json:"events,omitempty"`
	OnlineSteps int `json:"onlineSteps,omitempty"`
	LearnSteps  int `json:"learnSteps,omitempty"`
	// WALSegments is the journal's current segment count (0 = disabled);
	// WALSizeBytes is the journal's on-disk size — with the default
	// retention this is exactly the bytes accumulated since the last
	// checkpoint barrier, i.e. how much a crash right now would replay.
	// WALRecordSpans maps each record kind ("evt", "txn", "rec") to the
	// first/last kind-local sequence number currently in the journal.
	WALSegments    int                `json:"walSegments,omitempty"`
	WALSizeBytes   int64              `json:"walSizeBytes,omitempty"`
	WALRecordSpans map[string]walSpan `json:"walRecordSpans,omitempty"`
	// TelemetryEventsDropped counts event-ring overwrites: structured
	// events that aged out before any scrape read them. A climbing value
	// means scrapes are too rare for the event volume.
	TelemetryEventsDropped int64 `json:"telemetryEventsDropped,omitempty"`
	// TracesSampled is the number of completed traces currently retained
	// in the sampling ring (0 when tracing is disabled).
	TracesSampled int `json:"tracesSampled,omitempty"`
	// CompiledPolicy reports the compiled-table serving cache: readiness,
	// table shape, hit/miss/rebuild counters, and the staleness window of
	// the last rebuild. Absent when the daemon runs with -compiled=false.
	CompiledPolicy *compiled.CacheStats `json:"compiledPolicy,omitempty"`
	// Wire reports codec negotiation: connections that spoke the binary
	// protocol vs JSON lines, plus the binary loop's coalesced requests
	// and shared in-batch recommend evaluations.
	WireBinaryConns int64 `json:"wireBinaryConns,omitempty"`
	WireJSONConns   int64 `json:"wireJsonConns,omitempty"`
	WireCoalesced   int64 `json:"wireCoalesced,omitempty"`
	WireSharedEvals int64 `json:"wireSharedEvals,omitempty"`
	// AlertsFiring lists the alert engine's currently firing alerts (see
	// /debug/alerts for history and stats); SLOBurn maps each objective to
	// its current error-budget burn rate (> 1 = out of SLO); Shadow is the
	// latest shadow-evaluation report. All absent when alerting is off.
	AlertsFiring []health.Alert       `json:"alertsFiring,omitempty"`
	SLOBurn      map[string]float64   `json:"sloBurn,omitempty"`
	Shadow       *health.ShadowReport `json:"shadow,omitempty"`
	// TSDB is the on-disk metric history's footprint (absent without
	// -tsdb). TelemetrySeries counts every series the registry currently
	// exports, including labeled vec children; TelemetryLabelsDropped
	// counts writes lost to vec cardinality caps — nonzero means a label
	// blowup is being contained.
	TSDB                   *tsdb.Stats `json:"tsdb,omitempty"`
	TelemetrySeries        int         `json:"telemetrySeries"`
	TelemetryLabelsDropped int64       `json:"telemetryLabelsDropped,omitempty"`
}

// handleReplay runs a verify-mode deterministic replay of the daemon's own
// WAL against its own decision log: it rebuilds the serving state the way a
// restart would (newest checkpoint generation, else fresh training), streams
// the journal through the offline replay engine, and diffs the regenerated
// decision stream against what the daemon actually logged. 200 with the
// report means the daemon can reproduce its own history bit-for-bit; 409
// carries the first divergence. The daemon lock is held for the duration —
// this is an audit probe, not a serving-path endpoint — so the journal and
// the log are frozen and consistent while they are compared.
func (s *server) handleReplay(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.cfg.WALDir == "" || s.cfg.DecisionLogPath == "" {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{
			"error": "replay verification needs the daemon started with both -wal and -log-decisions",
		})
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Flush the buffered decision log so the comparison sees every line the
	// daemon has produced (the WAL is already durable per its sync policy).
	if s.decisions != nil {
		if err := s.decisions.Sync(); err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
			return
		}
	}
	rep, err := replay.Verify(replay.VerifyOptions{
		Config: replayConfig(s.cfg),
		Source: replay.Source{
			WALDir:           s.cfg.WALDir,
			CheckpointPath:   s.cfg.CheckpointPath,
			CheckpointRetain: s.cfg.CheckpointRetain,
		},
		DecisionLog: s.cfg.DecisionLogPath,
	})
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		return
	}
	if !rep.Match {
		w.WriteHeader(http.StatusConflict)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		s.cfg.Logf("jarvisd: replay report encode: %v", err)
	}
}

// handleHealthz reports daemon health: 200 while every recommendation so
// far was served from a trusted Q function, 503 once any degraded to the
// safe NoOp. The system state is read under the daemon lock, so the report
// is consistent with concurrent client traffic.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := healthStatus{
		Status:                  "ok",
		DegradedRecommendations: s.sys.DegradedRecommendations(),
		Violations:              s.violations,
		RestoredFromCheckpoint:  s.restored,
		QueueDepth:              s.inflight.Load(),
		ShedEvents:              s.shedEvents,
		ShedRecommends:          s.shedRecommends,
		Events:                  s.eventsIngested,
		OnlineSteps:             s.onlineSteps,
		LearnSteps:              s.learnSteps,
	}
	if s.watchdog != nil {
		h.Watchdog = s.watchdog.Stats()
	}
	if s.wal != nil {
		h.WALSegments = s.wal.Segments()
		h.WALSizeBytes = s.wal.SizeBytes()
		if len(s.walSpans) > 0 {
			h.WALRecordSpans = make(map[string]walSpan, len(s.walSpans))
			for k, sp := range s.walSpans {
				h.WALRecordSpans[k] = sp
			}
		}
	}
	s.mu.Unlock()
	h.Role = s.role()
	h.Replication = s.replicationHealth()
	h.TelemetryEventsDropped = telemetry.Default.Events().Dropped()
	h.TelemetrySeries = telemetry.Default.SeriesCount()
	h.TelemetryLabelsDropped = telemetry.Default.LabelsDropped()
	if s.ts != nil {
		st := s.ts.Stats()
		h.TSDB = &st
	}
	h.TracesSampled = s.tracer.Ring().Len()
	if s.health != nil {
		h.AlertsFiring = s.health.Active()
	}
	if s.slo != nil {
		rep := s.slo.Report()
		h.SLOBurn = make(map[string]float64, len(rep.Objectives))
		for _, o := range rep.Objectives {
			h.SLOBurn[o.Name] = o.BurnRate
		}
	}
	if s.shadow != nil {
		h.Shadow = s.shadow.Last()
	}
	if c := s.sys.CompiledPolicy(); c != nil {
		st := c.Stats()
		h.CompiledPolicy = &st
	}
	h.WireBinaryConns = mWireBinary.Value()
	h.WireJSONConns = mWireJSON.Value()
	h.WireCoalesced = mWireCoalesced.Value()
	h.WireSharedEvals = mWireSharedEvals.Value()
	if s.cfg.CheckpointPath != "" {
		if last := s.lastCkpt.Load(); last > 0 {
			h.CheckpointAgeSec = time.Since(time.Unix(0, last)).Seconds()
		}
	}
	code := http.StatusOK
	if h.DegradedRecommendations > 0 {
		h.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(h); err != nil {
		s.cfg.Logf("jarvisd: healthz encode: %v", err)
	}
}
