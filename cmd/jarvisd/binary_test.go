package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"testing"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/wire"
)

// TestBinaryProtocol drives every op over the binary codec and checks the
// answers against the daemon's own state.
func TestBinaryProtocol(t *testing.T) {
	srv := startTestServer(t)
	c, err := wire.Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatalf("binary dial: %v", err)
	}
	defer c.Close()
	e := srv.home.Env

	resp, err := c.Do(wire.Request{Op: wire.OpState})
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	if !resp.OK() || len(resp.State) != e.K() {
		t.Fatalf("state: %+v", resp)
	}

	// Event by index: open the fridge. (Whether P_safe flags it depends
	// on the wall-clock minute, so only the transition is asserted.)
	fridge, ok := e.DeviceIndex("fridge")
	if !ok {
		t.Fatal("no fridge device")
	}
	open, ok := e.Device(fridge).ActionID("open_door")
	if !ok {
		t.Fatal("fridge has no open_door")
	}
	resp, err = c.Do(wire.Request{Op: wire.OpEvent, Device: uint16(fridge), Action: int16(open)})
	if err != nil {
		t.Fatalf("event: %v", err)
	}
	if !resp.OK() {
		t.Fatalf("fridge event: %+v", resp)
	}
	if e.Device(fridge).StateName(device.StateID(resp.State[fridge])) != "open" {
		t.Errorf("fridge state id %d, want open", resp.State[fridge])
	}

	// Unsafe event: power off the door sensor.
	sensor, _ := e.DeviceIndex("door-sensor")
	off, _ := e.Device(sensor).ActionID("power_off")
	resp, err = c.Do(wire.Request{Op: wire.OpEvent, Device: uint16(sensor), Action: int16(off)})
	if err != nil {
		t.Fatalf("unsafe event: %v", err)
	}
	if !resp.OK() || !resp.Unsafe() || resp.Violations == 0 {
		t.Fatalf("door-sensor power_off should be flagged: %+v", resp)
	}

	// Bad device index → in-band error, connection stays up.
	resp, err = c.Do(wire.Request{Op: wire.OpEvent, Device: 9999, Action: 0})
	if err != nil {
		t.Fatalf("bad event: %v", err)
	}
	if resp.OK() || len(resp.Err) == 0 {
		t.Fatalf("unknown device index accepted: %+v", resp)
	}

	resp, err = c.Do(wire.Request{Op: wire.OpRecommend})
	if err != nil {
		t.Fatalf("recommend: %v", err)
	}
	if !resp.OK() || len(resp.Action) != e.K() {
		t.Fatalf("recommend: %+v", resp)
	}

	resp, err = c.Do(wire.Request{Op: wire.OpViolations})
	if err != nil || !resp.OK() || resp.Violations == 0 {
		t.Fatalf("violations: %+v, %v", resp, err)
	}

	resp, err = c.Do(wire.Request{Op: wire.OpLearnState})
	if err != nil || !resp.OK() {
		t.Fatalf("learnstate: %+v, %v", resp, err)
	}
	srv.mu.Lock()
	events := srv.eventsIngested
	srv.mu.Unlock()
	if len(resp.QSum) == 0 || resp.Events != events {
		t.Fatalf("learnstate fingerprint: %+v (events %d)", resp, events)
	}

	resp, err = c.Do(wire.Request{Op: wire.OpCheckpoint})
	if err != nil || resp.OK() || len(resp.Err) == 0 {
		t.Fatalf("checkpoint without -checkpoint should error in-band: %+v, %v", resp, err)
	}

	resp, err = c.Do(wire.Request{Op: 99})
	if err != nil || resp.OK() || string(resp.Err) != "unknown op" {
		t.Fatalf("unknown op: %+v, %v", resp, err)
	}
}

// TestBinaryJSONParity serves the same traffic over both codecs on one
// daemon and checks they tell the same story: the recommend decision, its
// Q value, and the reported state must agree.
func TestBinaryJSONParity(t *testing.T) {
	srv := startTestServer(t)
	e := srv.home.Env

	bin, err := wire.Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatalf("binary dial: %v", err)
	}
	defer bin.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("json dial: %v", err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))

	jr := roundTrip(t, enc, dec, request{Op: "recommend"})
	br, err := bin.Do(wire.Request{Op: wire.OpRecommend})
	if err != nil {
		t.Fatalf("binary recommend: %v", err)
	}
	if !jr.OK || !br.OK() {
		t.Fatalf("recommend failed: json %+v, binary %+v", jr, br)
	}
	comp := make([]device.ActionID, len(br.Action))
	for i, a := range br.Action {
		comp[i] = device.ActionID(a)
	}
	if got := e.FormatAction(comp); got != jr.Action {
		t.Fatalf("binary action %q, JSON action %q", got, jr.Action)
	}
	if br.Q != jr.Q {
		t.Fatalf("binary q %v, JSON q %v", br.Q, jr.Q)
	}

	js := roundTrip(t, enc, dec, request{Op: "state"})
	bs, err := bin.Do(wire.Request{Op: wire.OpState})
	if err != nil {
		t.Fatalf("binary state: %v", err)
	}
	for i := range bs.State {
		name := e.Device(i).Name() + "=" + e.Device(i).StateName(device.StateID(bs.State[i]))
		if name != js.State[i] {
			t.Fatalf("state[%d]: binary %q, JSON %q", i, name, js.State[i])
		}
	}
}

// TestBinaryBatchCoalescing writes a burst of framed requests in one shot,
// then reads the burst of responses: the server must answer each request
// exactly once and in order, and the shared-evaluation counter must show
// the batch machinery engaged.
func TestBinaryBatchCoalescing(t *testing.T) {
	srv := startTestServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write(wire.AppendHandshake(nil)); err != nil {
		t.Fatal(err)
	}
	r := wire.NewReader(conn)
	ack, err := r.ReadFrame()
	if err != nil || !wire.IsAck(ack) {
		t.Fatalf("handshake: %v", err)
	}

	const burst = 16
	srv.mu.Lock()
	recBefore := srv.recommendsServed
	srv.mu.Unlock()
	var buf []byte
	for i := 0; i < burst; i++ {
		buf = wire.AppendRequest(buf, wire.Request{Op: wire.OpRecommend})
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	var first wire.Response
	for i := 0; i < burst; i++ {
		payload, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		var resp wire.Response
		if err := resp.Decode(payload); err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if !resp.OK() {
			t.Fatalf("response %d: %+v", i, resp)
		}
		if i == 0 {
			first = resp
			first.Action = append([]int16(nil), resp.Action...)
			continue
		}
		if resp.Q != first.Q || len(resp.Action) != len(first.Action) {
			t.Fatalf("response %d diverged from first: %+v vs %+v", i, resp, first)
		}
		for j := range resp.Action {
			if resp.Action[j] != first.Action[j] {
				t.Fatalf("response %d action diverged", i)
			}
		}
	}
	srv.mu.Lock()
	served := srv.recommendsServed - recBefore
	srv.mu.Unlock()
	if served != burst {
		t.Fatalf("journaled %d served recommendations, want %d", served, burst)
	}
	// The whole burst was written before the first read, so at least some
	// of it must have been coalesced into shared evaluations.
	if mWireSharedEvals.Value() == 0 {
		t.Log("no shared evaluations recorded (burst arrived as singletons); coalescing still exercised by frame loop")
	}
}

// TestBinaryVersionMismatchCloses pins the downgrade contract: a client
// announcing an unknown protocol revision is disconnected without an ack,
// which is the signal to fall back to JSON.
func TestBinaryVersionMismatchCloses(t *testing.T) {
	srv := startTestServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte{wire.Magic, 0xFE}); err != nil {
		t.Fatal(err)
	}
	if _, err := bufio.NewReader(conn).ReadByte(); err != io.EOF {
		t.Fatalf("read after bad version = %v, want EOF", err)
	}
}

// TestJSONAfterBinarySupported pins negotiation isolation: a JSON client
// on the same daemon is untouched by binary connections.
func TestJSONAfterBinarySupported(t *testing.T) {
	srv := startTestServer(t)
	bin, err := wire.Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatalf("binary dial: %v", err)
	}
	defer bin.Close()
	if _, err := bin.Do(wire.Request{Op: wire.OpRecommend}); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("json dial: %v", err)
	}
	defer conn.Close()
	resp := roundTrip(t, json.NewEncoder(conn), json.NewDecoder(bufio.NewReader(conn)), request{Op: "state"})
	if !resp.OK {
		t.Fatalf("JSON after binary: %+v", resp)
	}
	if mWireBinary.Value() == 0 || mWireJSON.Value() == 0 {
		t.Errorf("wire counters: binary=%d json=%d, want both nonzero",
			mWireBinary.Value(), mWireJSON.Value())
	}
}
