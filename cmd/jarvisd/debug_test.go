package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"jarvis/internal/env"
	"jarvis/internal/rl"
	"jarvis/internal/smarthome"
	"jarvis/internal/telemetry"
)

// startDebugTestServer boots a daemon with the observability surface on an
// ephemeral port.
func startDebugTestServer(t *testing.T, cfg serverConfig) *server {
	t.Helper()
	cfg.DebugAddr = "127.0.0.1:0"
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	if err := srv.listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	if srv.DebugAddr() == "" {
		t.Fatal("debug listener did not come up")
	}
	return srv
}

func httpGet(t *testing.T, srv *server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + srv.DebugAddr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp.StatusCode, body
}

// TestMetricsEndpoint: /metrics serves valid JSON whose request counters
// are monotone across scrapes and reflect served traffic.
func TestMetricsEndpoint(t *testing.T) {
	srv := startDebugTestServer(t, serverConfig{Seed: 1, LearningDays: 2, Episodes: 2})

	code, body := httpGet(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", code)
	}
	var snap1 telemetry.Snapshot
	if err := json.Unmarshal(body, &snap1); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	if snap1.Counters == nil || snap1.Gauges == nil || snap1.Histograms == nil {
		t.Fatalf("snapshot missing sections: %+v", snap1)
	}

	// Serve some protocol traffic between scrapes.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))
	const reqs = 5
	for i := 0; i < reqs; i++ {
		if resp := roundTrip(t, enc, dec, request{Op: "state"}); !resp.OK {
			t.Fatalf("state: %+v", resp)
		}
	}

	_, body = httpGet(t, srv, "/metrics")
	var snap2 telemetry.Snapshot
	if err := json.Unmarshal(body, &snap2); err != nil {
		t.Fatalf("second /metrics is not valid JSON: %v", err)
	}
	stateSeries := `jarvisd.requests{op="state"}`
	got := snap2.Counters[stateSeries] - snap1.Counters[stateSeries]
	if got < reqs {
		t.Errorf("%s grew by %d, want >= %d", stateSeries, got, reqs)
	}
	for name, v := range snap1.Counters {
		if snap2.Counters[name] < v {
			t.Errorf("counter %s went backwards: %d -> %d", name, v, snap2.Counters[name])
		}
	}
	if snap2.Histograms["jarvisd.request.latency"].Count < snap1.Histograms["jarvisd.request.latency"].Count+reqs {
		t.Errorf("request latency histogram did not grow: %+v -> %+v",
			snap1.Histograms["jarvisd.request.latency"], snap2.Histograms["jarvisd.request.latency"])
	}
	if snap2.Gauges["jarvisd.conns.active"] < 1 {
		t.Errorf("jarvisd.conns.active = %v with a live client", snap2.Gauges["jarvisd.conns.active"])
	}
}

// TestExpvarAndPprofEndpoints: the stock Go debug surfaces are mounted on
// the same listener and the expvar view carries the telemetry snapshot.
func TestExpvarAndPprofEndpoints(t *testing.T) {
	srv := startDebugTestServer(t, serverConfig{Seed: 1, LearningDays: 2, Episodes: 2})

	code, body := httpGet(t, srv, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d, want 200", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if _, ok := vars["telemetry"]; !ok {
		t.Error("/debug/vars does not publish the telemetry snapshot")
	}

	code, body = httpGet(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("/debug/pprof/ status = %d, want a 200 profile index", code)
	}
}

// poisonQ drives the daemon's tabular Q function to NaN for its current
// state across every time bucket, simulating a diverged optimizer: the TD
// update Q ← Q + α(NaN − Q) propagates NaN into the stored row.
func poisonQ(t *testing.T, srv *server) {
	t.Helper()
	q, ok := srv.sys.Agent().Q().(*rl.TableQ)
	if !ok {
		t.Fatalf("daemon Q function is %T, want *rl.TableQ", srv.sys.Agent().Q())
	}
	nan := math.NaN()
	srv.mu.Lock()
	state := append(env.State(nil), srv.state...)
	srv.mu.Unlock()
	for inst := 0; inst < smarthome.InstancesPerDay; inst += 15 {
		exp := rl.Experience{S: state, T: inst, Minis: []int{0}}
		if _, err := q.Update([]rl.Experience{exp}, []float64{nan}); err != nil {
			t.Fatalf("poison update: %v", err)
		}
	}
	invalidateCompiledFor(srv)
}

// invalidateCompiledFor mirrors what every in-band Q mutation does through
// System's hooks: tests that poison the Q function out-of-band must mark
// the compiled serving table stale themselves, and the rebuild then
// refuses the non-finite values — so requests fall back to the live agent
// path these tests exercise.
func invalidateCompiledFor(srv *server) {
	c := srv.sys.CompiledPolicy()
	if c == nil {
		return
	}
	srv.mu.Lock()
	c.Invalidate()
	srv.mu.Unlock()
	c.Wait()
}

// TestHealthzDegradesOnNaN is the degraded-mode acceptance test: /healthz
// reports 200 on a healthy daemon and flips to 503 once a recommendation
// falls back to the safe NoOp because the Q function produced NaN.
func TestHealthzDegradesOnNaN(t *testing.T) {
	srv := startDebugTestServer(t, serverConfig{Seed: 1, LearningDays: 2, Episodes: 2})

	code, body := httpGet(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthy /healthz status = %d, want 200 (%s)", code, body)
	}
	var h healthStatus
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("/healthz is not valid JSON: %v", err)
	}
	if h.Status != "ok" || h.DegradedRecommendations != 0 {
		t.Fatalf("healthy daemon reports %+v", h)
	}

	poisonQ(t, srv)
	resp := srv.handle(request{Op: "recommend"})
	if !resp.OK {
		t.Fatalf("recommend on poisoned daemon: %+v", resp)
	}
	if resp.Degraded == 0 {
		t.Fatal("recommendation against a NaN Q function did not degrade")
	}

	code, body = httpGet(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz status = %d, want 503 (%s)", code, body)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("degraded /healthz is not valid JSON: %v", err)
	}
	if h.Status != "degraded" || h.DegradedRecommendations == 0 {
		t.Errorf("degraded daemon reports %+v", h)
	}
}

// TestHealthzReportsCheckpointAge: with checkpointing on, /healthz carries
// the age of the last successful save.
func TestHealthzReportsCheckpointAge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jarvisd.ckpt")
	srv := startDebugTestServer(t, serverConfig{
		Seed: 1, LearningDays: 2, Episodes: 2, CheckpointPath: path,
	})
	code, body := httpGet(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status = %d, want 200", code)
	}
	var h healthStatus
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("/healthz is not valid JSON: %v", err)
	}
	if h.CheckpointAgeSec <= 0 || h.CheckpointAgeSec > 600 {
		t.Errorf("checkpointAgeSec = %v, want a small positive age", h.CheckpointAgeSec)
	}
}

// TestConcurrentScrapesAndTraffic exercises /metrics and /healthz scrapes
// against live protocol traffic; run under -race (CI does) it proves the
// observability surface adds no data races to the request path.
func TestConcurrentScrapesAndTraffic(t *testing.T) {
	srv := startDebugTestServer(t, serverConfig{Seed: 1, LearningDays: 2, Episodes: 2})
	var wg sync.WaitGroup
	errc := make(chan error, 6)

	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				for _, path := range []string{"/metrics", "/healthz"} {
					resp, err := http.Get("http://" + srv.DebugAddr() + path)
					if err != nil {
						errc <- err
						return
					}
					var v any
					err = json.NewDecoder(resp.Body).Decode(&v)
					resp.Body.Close()
					if err != nil {
						errc <- fmt.Errorf("%s: %w", path, err)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				errc <- err
				return
			}
			defer conn.Close()
			enc := json.NewEncoder(conn)
			dec := json.NewDecoder(bufio.NewReader(conn))
			ops := []request{{Op: "state"}, {Op: "recommend"}, {Op: "violations"}}
			for j := 0; j < 20; j++ {
				if err := enc.Encode(ops[j%len(ops)]); err != nil {
					errc <- err
					return
				}
				var resp response
				if err := dec.Decode(&resp); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("concurrent scrape/traffic: %v", err)
	}
}

// TestDecisionLogRecordsRecommendations: with -log-decisions, every
// recommendation and checked event lands in the JSON-lines audit log with
// its verdict, and the log survives Close (flushed and fsynced).
func TestDecisionLogRecordsRecommendations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.jsonl")
	srv, err := newServer(serverConfig{
		Seed: 1, LearningDays: 2, Episodes: 2, DecisionLogPath: path,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	if resp := srv.handle(request{Op: "recommend"}); !resp.OK {
		t.Fatalf("recommend: %+v", resp)
	}
	if resp := srv.handle(request{Op: "event", Device: "door-sensor", Action: "power_off"}); !resp.Unsafe {
		t.Fatalf("sensor-off should be unsafe: %+v", resp)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read decision log: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("decision log has %d lines, want 2:\n%s", len(lines), data)
	}
	var recs []decisionRecord
	for _, line := range lines {
		var rec decisionRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("decision line %q: %v", line, err)
		}
		recs = append(recs, rec)
	}
	if recs[0].Kind != "recommend" || recs[0].Verdict != "safe" || recs[0].Action == "" {
		t.Errorf("recommend record: %+v", recs[0])
	}
	if recs[0].UnixNs <= 0 || len(recs[0].State) == 0 {
		t.Errorf("recommend record missing timestamp or state: %+v", recs[0])
	}
	if recs[1].Kind != "event" || recs[1].Verdict != "unsafe" {
		t.Errorf("unsafe event record: %+v", recs[1])
	}
}

// TestDecisionLogSyncDurability: Sync makes buffered decisions durable
// while the daemon keeps running (the shutdown path relies on the same
// flush+fsync inside Close after SIGINT/SIGTERM).
func TestDecisionLogSyncDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "decisions.jsonl")
	srv, err := newServer(serverConfig{
		Seed: 1, LearningDays: 2, Episodes: 2, DecisionLogPath: path,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if resp := srv.handle(request{Op: "recommend"}); !resp.OK {
		t.Fatalf("recommend: %+v", resp)
	}
	// Before Sync the record may sit in the bufio layer; after Sync it must
	// be on disk even though the server is still running.
	if err := srv.decisions.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read decision log: %v", err)
	}
	if !strings.Contains(string(data), `"kind":"recommend"`) {
		t.Errorf("synced decision log missing record: %q", data)
	}
}

// TestFinalSnapshotMarshals: the shutdown farewell line must always be
// producible — the snapshot with events stripped marshals to one JSON
// object even while metrics carry data.
func TestFinalSnapshotMarshals(t *testing.T) {
	snap := telemetry.Default.Snapshot()
	snap.Events = nil
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("final snapshot does not marshal: %v", err)
	}
	if !json.Valid(b) || b[0] != '{' {
		t.Fatalf("final snapshot is not a JSON object: %s", b)
	}
}
