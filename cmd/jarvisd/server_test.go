package main

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"
)

func startTestServer(t *testing.T) *server {
	t.Helper()
	srv, err := newServer(serverConfig{Seed: 1, LearningDays: 2, Episodes: 2})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	if err := srv.listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return srv
}

func roundTrip(t *testing.T, enc *json.Encoder, dec *json.Decoder, req request) response {
	t.Helper()
	if err := enc.Encode(req); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp
}

func TestServerProtocol(t *testing.T) {
	srv := startTestServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))

	// state
	resp := roundTrip(t, enc, dec, request{Op: "state"})
	if !resp.OK || len(resp.State) != 11 {
		t.Fatalf("state: %+v", resp)
	}

	// benign event: open the fridge
	resp = roundTrip(t, enc, dec, request{Op: "event", Device: "fridge", Action: "open_door"})
	if !resp.OK {
		t.Fatalf("event: %+v", resp)
	}
	found := false
	for _, s := range resp.State {
		if s == "fridge=open" {
			found = true
		}
	}
	if !found {
		t.Errorf("fridge should be open: %v", resp.State)
	}

	// unsafe event: power off the door sensor (never natural)
	resp = roundTrip(t, enc, dec, request{Op: "event", Device: "door-sensor", Action: "power_off"})
	if !resp.OK || !resp.Unsafe {
		t.Fatalf("sensor-off should be flagged unsafe: %+v", resp)
	}
	if resp.Violations == 0 {
		t.Error("violation counter should increment")
	}

	// recommend
	resp = roundTrip(t, enc, dec, request{Op: "recommend"})
	if !resp.OK || !strings.HasPrefix(resp.Action, "(") {
		t.Fatalf("recommend: %+v", resp)
	}

	// violations
	resp = roundTrip(t, enc, dec, request{Op: "violations"})
	if !resp.OK || resp.Violations == 0 {
		t.Fatalf("violations: %+v", resp)
	}

	// errors
	resp = roundTrip(t, enc, dec, request{Op: "event", Device: "ghost", Action: "x"})
	if resp.OK || resp.Error == "" {
		t.Fatalf("unknown device should error: %+v", resp)
	}
	resp = roundTrip(t, enc, dec, request{Op: "event", Device: "tv", Action: "explode"})
	if resp.OK {
		t.Fatalf("unknown action should error: %+v", resp)
	}
	resp = roundTrip(t, enc, dec, request{Op: "selfdestruct"})
	if resp.OK {
		t.Fatalf("unknown op should error: %+v", resp)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	srv := startTestServer(t)
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			enc := json.NewEncoder(conn)
			dec := json.NewDecoder(bufio.NewReader(conn))
			for j := 0; j < 20; j++ {
				if err := enc.Encode(request{Op: "state"}); err != nil {
					done <- err
					return
				}
				var resp response
				if err := dec.Decode(&resp); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("client: %v", err)
		}
	}
}
