package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"jarvis/internal/telemetry"
)

func startTestServer(t *testing.T) *server {
	t.Helper()
	srv, err := newServer(serverConfig{Seed: 1, LearningDays: 2, Episodes: 2})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	if err := srv.listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return srv
}

func roundTrip(t *testing.T, enc *json.Encoder, dec *json.Decoder, req request) response {
	t.Helper()
	if err := enc.Encode(req); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp
}

func TestServerProtocol(t *testing.T) {
	srv := startTestServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))

	// state
	resp := roundTrip(t, enc, dec, request{Op: "state"})
	if !resp.OK || len(resp.State) != 11 {
		t.Fatalf("state: %+v", resp)
	}

	// benign event: open the fridge
	resp = roundTrip(t, enc, dec, request{Op: "event", Device: "fridge", Action: "open_door"})
	if !resp.OK {
		t.Fatalf("event: %+v", resp)
	}
	found := false
	for _, s := range resp.State {
		if s == "fridge=open" {
			found = true
		}
	}
	if !found {
		t.Errorf("fridge should be open: %v", resp.State)
	}

	// unsafe event: power off the door sensor (never natural)
	resp = roundTrip(t, enc, dec, request{Op: "event", Device: "door-sensor", Action: "power_off"})
	if !resp.OK || !resp.Unsafe {
		t.Fatalf("sensor-off should be flagged unsafe: %+v", resp)
	}
	if resp.Violations == 0 {
		t.Error("violation counter should increment")
	}

	// recommend
	resp = roundTrip(t, enc, dec, request{Op: "recommend"})
	if !resp.OK || !strings.HasPrefix(resp.Action, "(") {
		t.Fatalf("recommend: %+v", resp)
	}

	// violations
	resp = roundTrip(t, enc, dec, request{Op: "violations"})
	if !resp.OK || resp.Violations == 0 {
		t.Fatalf("violations: %+v", resp)
	}

	// errors
	resp = roundTrip(t, enc, dec, request{Op: "event", Device: "ghost", Action: "x"})
	if resp.OK || resp.Error == "" {
		t.Fatalf("unknown device should error: %+v", resp)
	}
	resp = roundTrip(t, enc, dec, request{Op: "event", Device: "tv", Action: "explode"})
	if resp.OK {
		t.Fatalf("unknown action should error: %+v", resp)
	}
	resp = roundTrip(t, enc, dec, request{Op: "selfdestruct"})
	if resp.OK {
		t.Fatalf("unknown op should error: %+v", resp)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	srv := startTestServer(t)
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			enc := json.NewEncoder(conn)
			dec := json.NewDecoder(bufio.NewReader(conn))
			for j := 0; j < 20; j++ {
				if err := enc.Encode(request{Op: "state"}); err != nil {
					done <- err
					return
				}
				var resp response
				if err := dec.Decode(&resp); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("client: %v", err)
		}
	}
}

// waitForConns blocks until the server tracks at least n live connections.
func waitForConns(t *testing.T, srv *server, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		srv.connMu.Lock()
		got := len(srv.conns)
		srv.connMu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never tracked %d connections", n)
}

// TestCloseTerminatesIdleConnection is the shutdown acceptance test: a
// client that holds an open connection without sending anything must not
// be able to hang Close (the old server blocked forever in wg.Wait because
// serve sat in dec.Decode).
func TestCloseTerminatesIdleConnection(t *testing.T) {
	srv, err := newServer(serverConfig{Seed: 1, LearningDays: 2, Episodes: 2})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	if err := srv.listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	waitForConns(t, srv, 1)

	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return within 5s while an idle client held a connection")
	}

	// The idle client observes its connection terminated.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("idle client connection survived server Close")
	}
}

// fakeListener feeds acceptLoop a scripted error sequence.
type fakeListener struct{ errs chan error }

func (l *fakeListener) Accept() (net.Conn, error) {
	err, ok := <-l.errs
	if !ok {
		return nil, net.ErrClosed
	}
	return nil, err
}
func (l *fakeListener) Close() error   { return nil }
func (l *fakeListener) Addr() net.Addr { return &net.TCPAddr{} }

// scriptedNetErr implements net.Error with a controllable Temporary bit.
type scriptedNetErr struct{ temp bool }

func (e scriptedNetErr) Error() string   { return "scripted accept error" }
func (e scriptedNetErr) Timeout() bool   { return false }
func (e scriptedNetErr) Temporary() bool { return e.temp }

// TestAcceptLoopRetriesTransientErrors proves the accept loop survives
// transient errors with backoff instead of dying on the first one, still
// terminates on a permanent failure, and counts every retry in telemetry.
func TestAcceptLoopRetriesTransientErrors(t *testing.T) {
	retriesBefore := telemetry.Default.Snapshot().Counters["jarvisd.accept.retries"]
	var mu sync.Mutex
	var transientLogs int
	cfg := serverConfig{Logf: func(format string, args ...any) {
		if strings.Contains(format, "transient") {
			mu.Lock()
			transientLogs++
			mu.Unlock()
		}
	}}.withDefaults()
	errs := make(chan error, 4)
	errs <- scriptedNetErr{temp: true}
	errs <- scriptedNetErr{temp: true}
	errs <- scriptedNetErr{temp: true}
	errs <- scriptedNetErr{temp: false} // permanent: loop must exit
	s := &server{
		cfg:   cfg,
		ln:    &fakeListener{errs: errs},
		stop:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	done := make(chan struct{})
	go func() {
		s.acceptLoop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("acceptLoop did not exit after a permanent error")
	}
	mu.Lock()
	defer mu.Unlock()
	if transientLogs != 3 {
		t.Errorf("retried %d transient errors, want 3", transientLogs)
	}
	retries := telemetry.Default.Snapshot().Counters["jarvisd.accept.retries"] - retriesBefore
	if retries != 3 {
		t.Errorf("jarvisd.accept.retries grew by %d, want 3", retries)
	}
}

// TestAcceptLoopSilentOnClosedListener: a closed listener is the normal
// shutdown path. The accept loop must exit without logging a spurious
// "accept failed" even when the error arrives wrapped (as the net package
// delivers it) and the stop channel has not been signalled yet.
func TestAcceptLoopSilentOnClosedListener(t *testing.T) {
	var mu sync.Mutex
	var logs []string
	cfg := serverConfig{Logf: func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}}.withDefaults()
	errs := make(chan error, 1)
	errs <- fmt.Errorf("accept tcp 127.0.0.1:0: %w", net.ErrClosed)
	s := &server{
		cfg:   cfg,
		ln:    &fakeListener{errs: errs},
		stop:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	done := make(chan struct{})
	go func() {
		s.acceptLoop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("acceptLoop did not exit on a closed listener")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, line := range logs {
		if strings.Contains(line, "accept failed") {
			t.Errorf("closed listener logged a spurious failure: %q", line)
		}
	}
}

// TestCheckpointRestartServesWithoutRetraining is the restore acceptance
// test: a daemon restarted against the checkpoint the previous instance
// wrote must come up restored (no optimizer retraining), carry over the
// violation count, agree with the original system's recommendation, and
// serve `recommend` over the wire.
func TestCheckpointRestartServesWithoutRetraining(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jarvisd.ckpt")
	cfg := serverConfig{Seed: 1, LearningDays: 2, Episodes: 2, CheckpointPath: path}

	srv1, err := newServer(cfg)
	if err != nil {
		t.Fatalf("first boot: %v", err)
	}
	if srv1.restored {
		t.Fatal("first boot claims to be restored with no checkpoint on disk")
	}
	act1, err := srv1.sys.Recommend(srv1.home.InitialState(), 600)
	if err != nil {
		t.Fatalf("recommend on trained system: %v", err)
	}
	// Record an unsafe event so the violation counter is nonzero in the
	// checkpoint.
	if resp := srv1.handle(request{Op: "event", Device: "door-sensor", Action: "power_off"}); !resp.Unsafe {
		t.Fatalf("sensor-off should be unsafe: %+v", resp)
	}
	wantViolations := srv1.violations
	if err := srv1.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}

	srv2, err := newServer(cfg)
	if err != nil {
		t.Fatalf("second boot: %v", err)
	}
	if !srv2.restored {
		t.Fatal("second boot retrained instead of restoring from checkpoint")
	}
	if srv2.violations != wantViolations {
		t.Errorf("restored violations = %d, want %d", srv2.violations, wantViolations)
	}
	act2, err := srv2.sys.Recommend(srv2.home.InitialState(), 600)
	if err != nil {
		t.Fatalf("recommend on restored system: %v", err)
	}
	e := srv1.home.Env
	if e.FormatAction(act1) != e.FormatAction(act2) {
		t.Errorf("restored recommendation %s differs from trained %s",
			e.FormatAction(act2), e.FormatAction(act1))
	}

	// And it serves recommend over the wire.
	if err := srv2.listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	conn, err := net.Dial("tcp", srv2.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))
	resp := roundTrip(t, enc, dec, request{Op: "recommend"})
	if !resp.OK || !strings.HasPrefix(resp.Action, "(") {
		t.Fatalf("restored daemon recommend: %+v", resp)
	}
	conn.Close()
	if err := srv2.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCorruptCheckpointFallsBackToFreshTraining: garbage on disk must not
// crash startup — the daemon trains fresh and overwrites the checkpoint
// with a valid one.
func TestCorruptCheckpointFallsBackToFreshTraining(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jarvisd.ckpt")
	if err := os.WriteFile(path, []byte("{this is not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := serverConfig{Seed: 1, LearningDays: 2, Episodes: 2, CheckpointPath: path}

	srv, err := newServer(cfg)
	if err != nil {
		t.Fatalf("newServer with corrupt checkpoint: %v", err)
	}
	if srv.restored {
		t.Fatal("server claims to have restored from a corrupt checkpoint")
	}
	if _, err := srv.sys.Recommend(srv.home.InitialState(), 600); err != nil {
		t.Fatalf("fresh-trained system cannot recommend: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The corrupt file was replaced by a valid checkpoint.
	srv2, err := newServer(cfg)
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	if !srv2.restored {
		t.Error("rewritten checkpoint did not restore on the next boot")
	}
	if err := srv2.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCheckpointConfigMismatchRetrains: a checkpoint trained under a
// different seed must be rejected, not silently served.
func TestCheckpointConfigMismatchRetrains(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jarvisd.ckpt")
	cfg := serverConfig{Seed: 1, LearningDays: 2, Episodes: 2, CheckpointPath: path}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.Seed = 2
	srv2, err := newServer(other)
	if err != nil {
		t.Fatalf("newServer with mismatched checkpoint: %v", err)
	}
	if srv2.restored {
		t.Error("restored from a checkpoint trained under a different seed")
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
}
