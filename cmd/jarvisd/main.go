// Command jarvisd runs a Jarvis hub daemon: it builds the 11-device smart
// home, runs a simulated learning phase, trains the constrained optimizer,
// and then serves a JSON-lines protocol over TCP:
//
//	{"op":"state"}                                   → current environment state
//	{"op":"event","device":"oven","action":"power_on"} → apply a device action
//	{"op":"recommend"}                               → Jarvis's best safe action now
//	{"op":"violations"}                              → unsafe transitions seen so far
//	{"op":"checkpoint"}                              → force a checkpoint save now
//	{"op":"learnstate"}                              → online-learning fingerprint
//	{"op":"promote"}                                 → follower only: promote to primary
//
// Connections whose first byte is the wire magic (0xB7) are served the
// length-prefixed binary codec instead — same ops, indices for names,
// with buffered requests coalesced into batch-scored responses; anything
// else falls through to the JSON loop, so old clients are untouched. By
// default steady-state recommendations come from a compiled policy table
// (-compiled=false forces the agent path).
//
// With -follow, the daemon starts as a hot standby instead: it streams the
// primary's WAL (connections opening with the replication magic 0xB8),
// applies every shipped record through the same machinery crash recovery
// uses, serves read-only recommendations from the replica policy, and
// promotes itself to a full primary when the primary goes silent past
// -promote-after (or on an explicit promote op).
//
// Every applied event is checked against the learned P_safe; unsafe
// transitions are executed (the hub is a monitor, not a gate) but flagged
// and counted, mirroring the paper's enforcement discussion.
//
// A second HTTP listener (-debug-addr, default 127.0.0.1:7464) serves the
// observability surface: /metrics (JSON telemetry snapshot, or Prometheus
// text exposition with ?format=prom), /healthz (degraded-mode aware),
// /debug/traces (sampled request traces; /debug/traces/chrome exports
// Chrome trace_event JSON), /debug/vars (expvar), and /debug/pprof. With
// -log-decisions, every recommendation and checked event is appended to a
// JSON-lines decision log for offline audit; with -trace-sample N, one in
// every N requests is traced through the whole pipeline and its trace ID
// stamped into the decision log. -profile-dir captures an automated CPU
// profile window plus a heap snapshot on shutdown.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"jarvis/internal/health"
	"jarvis/internal/telemetry"
	"jarvis/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "jarvisd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jarvisd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7463", "listen address")
	seed := fs.Int64("seed", 1, "random seed for the learning phase")
	learningDays := fs.Int("learning-days", 7, "simulated learning-phase length")
	episodes := fs.Int("episodes", 60, "optimizer training episodes")
	useDNN := fs.Bool("dnn", false, "train the deep Q network backend instead of the tabular default (checkpoints are backend-specific)")
	compiledOn := fs.Bool("compiled", true, "serve steady-state recommendations from a compiled policy table (falls back to the agent when the state space is too large)")
	ckpt := fs.String("checkpoint", "", "checkpoint base path: restore the newest valid generation on start, save a new one on shutdown (empty = disabled)")
	ckptRetain := fs.Int("checkpoint-retain", 4, "checkpoint generations to keep on disk")
	walDir := fs.String("wal", "", "write-ahead log directory: journal events and learning transitions, replay them after a crash (empty = disabled)")
	walSync := fs.String("wal-sync", "record", "WAL fsync policy: record | interval | rotate")
	maxQueue := fs.Int("max-queue", 64, "admission threshold: shed learning above half this many inflight requests, recommendations above it (negative = never shed)")
	onlineEvery := fs.Int("online-train-every", 4, "run one online learn step per N ingested transitions (negative = disabled)")
	fixedMinute := fs.Int("fixed-minute", 0, "pin the minute-of-day for deterministic replay testing (0 = wall clock)")
	debugAddr := fs.String("debug-addr", "127.0.0.1:7464", "HTTP address for /metrics, /healthz, /debug/vars and /debug/pprof (empty = disabled)")
	logDecisions := fs.String("log-decisions", "", "append one JSON line per recommendation/event decision to this file (empty = disabled)")
	logDecisionsMaxBytes := fs.Int64("log-decisions-max-bytes", 0, "rotate the decision log once the active file would exceed this many bytes (0 = one unbounded file)")
	logDecisionsKeep := fs.Int("log-decisions-keep", 4, "rotated decision-log files to keep beside the active one")
	traceSample := fs.Int("trace-sample", 0, "trace one in every N requests through the pipeline (1 = every request, 0 = disabled)")
	traceRing := fs.Int("trace-ring", 0, "completed traces retained for /debug/traces (0 = default)")
	anomalyFilter := fs.Bool("anomaly-filter", false, "train the benign-anomaly ANN and score every recommendation through it")
	alertRules := fs.String("alert-rules", "", "alert rules file (JSON; empty = built-in defaults, \"none\" = disable alerting)")
	alertLog := fs.String("alert-log", "", "append one JSON line per alert firing/resolved transition to this file (empty = disabled)")
	sloWindow := fs.Duration("slo-window", 10*time.Minute, "rolling window for SLO error-budget burn rates")
	tsdbDir := fs.String("tsdb", "", "on-disk metric history directory: append one telemetry snapshot per -ts-interval, serve range queries on /debug/tsdb (empty = disabled)")
	tsInterval := fs.Duration("ts-interval", 0, "metric history append cadence (0 = the health-evaluation interval)")
	shadowEvery := fs.Int("shadow-every", 32, "run one shadow policy evaluation per N online learn steps (<= 0 = disabled; needs -wal and -checkpoint)")
	profileDir := fs.String("profile-dir", "", "capture cpu.pprof (first -profile-cpu-window) and a shutdown heap.pprof into this directory (empty = disabled)")
	profileCPUWindow := fs.Duration("profile-cpu-window", 30*time.Second, "how long the automated CPU profile records")
	idle := fs.Duration("idle-timeout", 5*time.Minute, "drop connections idle longer than this")
	writeTimeout := fs.Duration("write-timeout", 10*time.Second, "per-response write deadline")
	follow := fs.String("follow", "", "start as a hot standby streaming the WAL from the primary at this address (empty = primary)")
	promoteAfter := fs.Duration("promote-after", 5*time.Second, "follower: self-promote to primary after this much primary silence (negative = only on explicit promote)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var syncPolicy wal.SyncPolicy
	switch *walSync {
	case "record":
		syncPolicy = wal.SyncEveryRecord
	case "interval":
		syncPolicy = wal.SyncInterval
	case "rotate":
		syncPolicy = wal.SyncOnRotate
	default:
		return fmt.Errorf("unknown -wal-sync %q (want record, interval, or rotate)", *walSync)
	}
	var alertingOff bool
	var rules []health.Rule
	switch *alertRules {
	case "":
		// nil rules = built-in defaults.
	case "none", "off":
		alertingOff = true
	default:
		var err error
		if rules, err = health.LoadRules(*alertRules); err != nil {
			return err
		}
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	// The profiler starts before training so the CPU window covers the
	// expensive startup phase as well as early serving.
	prof := startProfiler(*profileDir, *profileCPUWindow, logf)
	defer prof.Stop()

	fmt.Fprintf(os.Stderr, "jarvisd: learning phase (%d days) and optimizer training...\n", *learningDays)
	srv, err := newServer(serverConfig{
		Seed:                *seed,
		LearningDays:        *learningDays,
		Episodes:            *episodes,
		UseDNN:              *useDNN,
		CompiledOff:         !*compiledOn,
		CheckpointPath:      *ckpt,
		CheckpointRetain:    *ckptRetain,
		WALDir:              *walDir,
		WALSync:             syncPolicy,
		MaxQueue:            *maxQueue,
		OnlineTrainEvery:    *onlineEvery,
		FixedMinute:         *fixedMinute,
		DebugAddr:           *debugAddr,
		DecisionLogPath:     *logDecisions,
		DecisionLogMaxBytes: *logDecisionsMaxBytes,
		DecisionLogKeep:     *logDecisionsKeep,
		TraceSample:         *traceSample,
		TraceRing:           *traceRing,
		AlertRules:          rules,
		AlertingOff:         alertingOff,
		AlertLogPath:        *alertLog,
		SLOWindow:           *sloWindow,
		TSDBDir:             *tsdbDir,
		TSInterval:          *tsInterval,
		ShadowEvery:         *shadowEvery,
		AnomalyFilter:       *anomalyFilter,
		IdleTimeout:         *idle,
		WriteTimeout:        *writeTimeout,
		FollowAddr:          *follow,
		PromoteAfter:        *promoteAfter,
		Logf:                logf,
	})
	if err != nil {
		return err
	}
	if err := srv.listen(*addr); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "jarvisd: listening on %s (P_safe: %d transitions)\n", srv.Addr(), srv.tableSize())
	if da := srv.DebugAddr(); da != "" {
		fmt.Fprintf(os.Stderr, "jarvisd: debug endpoints on http://%s (/metrics /healthz /debug/vars /debug/pprof)\n", da)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "jarvisd: shutting down")
	// Close drains the handlers, writes the final checkpoint, and flushes
	// the decision log; the final snapshot then captures everything the
	// daemon counted, so the last observable state survives on stderr even
	// after the /metrics listener is gone.
	err = srv.Close()
	snap := telemetry.Default.Snapshot()
	snap.Events = nil // keep the farewell line compact
	if b, merr := json.Marshal(snap); merr == nil {
		fmt.Fprintf(os.Stderr, "jarvisd: final telemetry snapshot: %s\n", b)
	}
	return err
}
