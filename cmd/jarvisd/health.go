package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"time"

	"jarvis/internal/health"
	"jarvis/internal/replay"
	"jarvis/internal/telemetry"
	"jarvis/internal/tsdb"
	"jarvis/internal/version"
)

// The policy-health layer (DESIGN.md §14) runs on two cadences, both off
// the request path:
//
//   - the health ticker (HealthInterval) snapshots telemetry, feeds the
//     SLO tracker, and evaluates the alert rules;
//   - the shadow evaluator runs every ShadowEvery online learn steps:
//     the learn path captures the live Q under the state lock (cheap
//     serialization), then a goroutine replays the WAL window through
//     replay.WhatIf against the newest checkpoint generation while the
//     daemon keeps serving.
//
// A drift alert with Rollback set arms the same rl.Watchdog path an
// internal divergence detection would, closing the loop: poisoned live
// policy → divergent shadow replay → alert → checkpoint rollback →
// divergence disappears → alert resolves.

// processStart anchors jarvisd_uptime_seconds.
var processStart = time.Now()

var buildMetricsOnce sync.Once

// registerBuildMetrics publishes the build-info and uptime metrics on the
// Default registry (satellite: standard fleet-dashboard plumbing).
func registerBuildMetrics() {
	buildMetricsOnce.Do(func() {
		telemetry.Default.SetInfo("jarvisd.build.info", map[string]string{
			"goversion": runtime.Version(),
			"version":   buildVersion(),
		})
		telemetry.Default.GaugeFunc("jarvisd.uptime.seconds", func() float64 {
			return time.Since(processStart).Seconds()
		})
	})
}

// buildVersion derives a git-describe-style version from the embedded
// build info: the module version when released, else the VCS revision
// with a -dirty suffix, else "devel".
func buildVersion() string {
	return version.String()
}

// defaultObjectives is the daemon's built-in SLO set: the serve-path
// latency objective plus the three "is the policy still trustworthy"
// ratios the paper's enforcement discussion cares about.
func defaultObjectives() []health.Objective {
	return []health.Objective{
		{
			Name:      "recommend-p99",
			Histogram: "jarvisd.request.latency",
			// 10ms: two orders of magnitude above the compiled fast path, so
			// only real trouble (lock convoys, shed storms) burns it.
			ThresholdNs: 10 * time.Millisecond.Nanoseconds(),
			Target:      0.99,
		},
		{
			Name: "degraded-recommendations",
			Bad:  "rl.recommend.degraded",
			// Labeled series are addressed by their flat snapshot name.
			Total:  `jarvisd.requests{op="recommend"}`,
			Target: 0.999,
		},
		{
			Name:   "shed-recommends",
			Bad:    "jarvisd.shed.recommends",
			Total:  `jarvisd.requests{op="recommend"}`,
			Target: 0.99,
		},
		{
			Name:    "safety-violations",
			Counter: "jarvisd.events.unsafe",
			Budget:  5,
		},
	}
}

// initHealth wires the health subsystem onto the server: alert engine,
// SLO tracker, shadow evaluator, and the evaluation ticker. Called at
// the end of newServer, after every startup mutation has landed.
func (s *server) initHealth() error {
	registerBuildMetrics()
	// The trace ring size is registry-backed so jarvisctl stats can show it
	// without a /healthz round trip. Last daemon wins in multi-daemon test
	// processes, which is fine for a process-wide registry.
	tracer := s.tracer
	telemetry.Default.GaugeFunc("jarvisd.traces.sampled", func() float64 {
		return float64(tracer.Ring().Len())
	})

	if s.cfg.AlertingOff {
		return nil
	}
	rules := s.cfg.AlertRules
	if rules == nil {
		rules = health.DefaultRules()
	}
	eng, err := health.NewEngine(health.EngineConfig{
		Rules:    rules,
		LogPath:  s.cfg.AlertLogPath,
		OnFiring: s.onAlertFiring,
		Logf:     s.cfg.Logf,
	})
	if err != nil {
		return err
	}
	s.health = eng

	objectives := defaultObjectives()
	if s.cfg.FollowAddr != "" {
		// A hot standby tracks how far it trails the primary as an SLO: the
		// jarvisd.replica.lag.records gauge (registered when following
		// starts) against a 256-record budget. The default replication-lag
		// alert rule fires on this objective's burn gauge.
		objectives = append(objectives, health.Objective{
			Name:   "replication-lag",
			Gauge:  "jarvisd.replica.lag.records",
			Budget: 256,
		})
	}
	tr, err := health.NewTracker(s.cfg.SLOWindow, objectives, telemetry.Default)
	if err != nil {
		eng.Close()
		return err
	}
	s.slo = tr

	// The metric history opens after the tracker so it can immediately
	// become the tracker's window source (tsdb.go).
	s.initTSDB()

	// Shadow evaluation needs both a journal to replay and a checkpoint
	// generation to fork from; without either it stays off and the drift
	// gauges simply never move.
	if s.cfg.ShadowEvery > 0 && s.wal != nil && s.store != nil {
		s.shadow = health.NewShadow(health.ShadowConfig{
			Config: replayConfig(s.cfg),
			Source: replay.Source{
				WALDir:           s.cfg.WALDir,
				CheckpointPath:   s.cfg.CheckpointPath,
				CheckpointRetain: s.cfg.CheckpointRetain,
			},
			Devices: s.home.Env.K(),
			Logf:    s.cfg.Logf,
		})
	}

	s.wg.Add(1)
	go s.healthLoop()
	return nil
}

// healthLoop is the evaluation ticker: snapshot → SLO observe → rule
// evaluation, every HealthInterval until shutdown. With a metric history
// open it also appends one snapshot per TSInterval — the history the SLO
// tracker reads its window edges from.
func (s *server) healthLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.HealthInterval)
	defer t.Stop()
	var tsC <-chan time.Time
	if s.ts != nil {
		ts := time.NewTicker(s.cfg.TSInterval)
		defer ts.Stop()
		tsC = ts.C
	}
	for {
		select {
		case <-s.stop:
			return
		case <-tsC:
			if err := s.ts.Append(tsdb.FromSnapshot(telemetry.Default.Snapshot())); err != nil {
				s.cfg.Logf("jarvisd: tsdb append: %v", err)
			}
		case <-t.C:
			snap := telemetry.Default.Snapshot()
			s.slo.Observe(snap)
			s.health.Evaluate(snap)
		}
	}
}

// onAlertFiring runs on each alert's firing edge (outside the engine
// lock). Rollback-armed alerts trip the watchdog, which restores the
// newest checkpoint generation under the state lock — the same path an
// internally detected divergence takes.
func (s *server) onAlertFiring(a health.Alert) {
	if !a.Rollback || s.watchdog == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watchdog.Trip("alert " + a.Rule + ": " + a.Description)
}

// maybeShadowEval triggers a shadow evaluation every ShadowEvery learn
// steps. Caller holds s.mu — the Q serialization must be consistent with
// the learn step that just ran — but the replay itself runs on its own
// goroutine so the lock is released before any expensive work starts.
func (s *server) maybeShadowEval() {
	if s.shadow == nil || s.learnSteps%s.cfg.ShadowEvery != 0 {
		return
	}
	if !s.shadow.TryBegin() {
		return // previous evaluation still replaying; skip this cadence
	}
	var buf bytes.Buffer
	if err := s.sys.SaveQ(&buf); err != nil {
		// A Q function that cannot even serialize (non-finite values) is
		// drift by definition; FailCapture pegs the divergence gauge.
		s.shadow.FailCapture(err)
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.shadow.Run(buf.Bytes())
	}()
}

// alertsDocument is the /debug/alerts body.
type alertsDocument struct {
	Stats   health.EngineStats   `json:"stats"`
	Firing  []health.Alert       `json:"firing"`
	History []health.Transition  `json:"history"`
	Shadow  *health.ShadowReport `json:"shadow,omitempty"`
	Rules   []health.Rule        `json:"rules,omitempty"`
}

// handleAlerts serves the alert engine state: lifecycle stats, currently
// firing alerts, recent transitions, the latest shadow report, and (with
// ?rules=1) the active rule set.
func (s *server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.health == nil {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "alerting disabled"})
		return
	}
	doc := alertsDocument{
		Stats:   s.health.Stats(),
		Firing:  s.health.Active(),
		History: s.health.History(64),
	}
	if s.shadow != nil {
		doc.Shadow = s.shadow.Last()
	}
	if r.URL.Query().Get("rules") != "" {
		doc.Rules = s.health.Rules()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		s.cfg.Logf("jarvisd: alerts encode: %v", err)
	}
}

// handleSLO serves the SLO tracker's windowed report.
func (s *server) handleSLO(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.slo == nil {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "alerting disabled"})
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.slo.Report()); err != nil {
		s.cfg.Logf("jarvisd: slo encode: %v", err)
	}
}
