// Command homesim generates the reproduction's synthetic datasets as JSON
// lines: simulated resident days (home A or home B profile), SIMADL-style
// benign anomalies, the 214-violation attack corpus, and day-ahead-market
// price curves.
//
// Usage:
//
//	homesim [-seed N] [-days N] [-profile a|b] [-start YYYY-MM-DD] <what>
//
// where <what> is one of days, anomalies, attacks, prices.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"jarvis/internal/attack"
	"jarvis/internal/dataset"
	"jarvis/internal/smarthome"
	"math/rand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "homesim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("homesim", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	days := fs.Int("days", 7, "number of days to simulate")
	profile := fs.String("profile", "a", "resident profile: a (OpenSHS-style) or b (Smart*-calibrated)")
	startStr := fs.String("start", "2020-09-07", "first day (YYYY-MM-DD)")
	count := fs.Int("count", 1000, "sample count for anomalies")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected one dataset: days|anomalies|attacks|prices")
	}
	start, err := time.Parse("2006-01-02", *startStr)
	if err != nil {
		return fmt.Errorf("bad -start: %w", err)
	}
	cfg := dataset.HomeAConfig()
	if *profile == "b" {
		cfg = dataset.HomeBConfig()
	}
	home := smarthome.NewFullHome()
	gen := dataset.NewGenerator(home, cfg)
	rng := rand.New(rand.NewSource(*seed))
	enc := json.NewEncoder(out)

	switch fs.Arg(0) {
	case "days":
		ds, err := gen.Days(start, *days, rng)
		if err != nil {
			return err
		}
		for _, d := range ds {
			rec := dayRecord{
				Date:      d.Context.Date.Format("2006-01-02"),
				EnergyKWh: d.EnergyKWh(home.Env),
				CostUSD:   d.CostUSD(home.Env),
				WakeAt:    d.Context.WakeAt,
				LeaveAt:   d.Context.LeaveAt,
				ReturnAt:  d.Context.ReturnAt,
				SleepAt:   d.Context.SleepAt,
			}
			for t, a := range d.Episode.Actions {
				if a.IsNoOp() {
					continue
				}
				rec.Events = append(rec.Events, eventRecord{
					Minute: t,
					Action: home.Env.FormatAction(a),
				})
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	case "anomalies":
		ds, err := gen.Days(start, *days, rng)
		if err != nil {
			return err
		}
		anoms, err := dataset.SynthesizeAnomalies(home, ds, *count, rng)
		if err != nil {
			return err
		}
		for _, a := range anoms {
			if err := enc.Encode(anomalyRecord{
				At:     a.Tr.At.Format(time.RFC3339),
				Minute: a.Tr.Instance,
				Action: home.Env.FormatAction(a.Tr.Act),
				Benign: a.Benign,
			}); err != nil {
				return err
			}
		}
	case "attacks":
		for _, v := range attack.Corpus(home) {
			if err := enc.Encode(attackRecord{
				ID:          v.ID,
				Type:        v.Type.String(),
				Name:        v.Name,
				Description: v.Description,
				Context:     v.Context.Name,
			}); err != nil {
				return err
			}
		}
	case "prices":
		ctx := dataset.NewDayContext(start, dataset.DefaultContext(), rng)
		for h := 0; h < 24; h++ {
			if err := enc.Encode(priceRecord{Hour: h, USDPerKWh: ctx.Prices[h*60]}); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown dataset %q", fs.Arg(0))
	}
	return nil
}

type dayRecord struct {
	Date      string        `json:"date"`
	EnergyKWh float64       `json:"energyKWh"`
	CostUSD   float64       `json:"costUSD"`
	WakeAt    int           `json:"wakeAtMin"`
	LeaveAt   int           `json:"leaveAtMin"`
	ReturnAt  int           `json:"returnAtMin"`
	SleepAt   int           `json:"sleepAtMin"`
	Events    []eventRecord `json:"events"`
}

type eventRecord struct {
	Minute int    `json:"minute"`
	Action string `json:"action"`
}

type anomalyRecord struct {
	At     string `json:"at"`
	Minute int    `json:"minute"`
	Action string `json:"action"`
	Benign bool   `json:"benign"`
}

type attackRecord struct {
	ID          int    `json:"id"`
	Type        string `json:"type"`
	Name        string `json:"name"`
	Description string `json:"description"`
	Context     string `json:"context,omitempty"`
}

type priceRecord struct {
	Hour      int     `json:"hour"`
	USDPerKWh float64 `json:"usdPerKWh"`
}
