package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runSim(t *testing.T, args ...string) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	var lines []string
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines
}

func TestDays(t *testing.T) {
	lines := runSim(t, "-days", "2", "-seed", "3", "days")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var rec dayRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rec.EnergyKWh <= 0 || len(rec.Events) == 0 {
		t.Errorf("record looks empty: %+v", rec)
	}
}

func TestDaysProfileB(t *testing.T) {
	lines := runSim(t, "-days", "1", "-profile", "b", "days")
	if len(lines) != 1 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestAnomalies(t *testing.T) {
	lines := runSim(t, "-days", "2", "-count", "50", "anomalies")
	if len(lines) != 50 {
		t.Fatalf("lines = %d, want 50", len(lines))
	}
	var rec anomalyRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if !rec.Benign {
		t.Error("anomalies must be labelled benign")
	}
}

func TestAttacks(t *testing.T) {
	lines := runSim(t, "attacks")
	if len(lines) != 214 {
		t.Fatalf("lines = %d, want 214", len(lines))
	}
	counts := map[string]int{}
	for _, l := range lines {
		var rec attackRecord
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		counts[rec.Type]++
	}
	if counts["type1-ta-safety"] != 114 {
		t.Errorf("type1 = %d, want 114", counts["type1-ta-safety"])
	}
}

func TestPrices(t *testing.T) {
	lines := runSim(t, "prices")
	if len(lines) != 24 {
		t.Fatalf("lines = %d, want 24", len(lines))
	}
	var rec priceRecord
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &rec); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rec.Hour != 23 || rec.USDPerKWh <= 0 {
		t.Errorf("record = %+v", rec)
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"nope"}, &buf); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown dataset: %v", err)
	}
	if err := run([]string{"-start", "bogus", "days"}, &buf); err == nil {
		t.Error("bad start date should error")
	}
	if err := run([]string{}, &buf); err == nil {
		t.Error("missing dataset should error")
	}
}
