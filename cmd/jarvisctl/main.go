// Command jarvisctl is a tiny client for the jarvisd hub daemon:
//
//	jarvisctl -addr 127.0.0.1:7463 state
//	jarvisctl event oven power_on
//	jarvisctl recommend
//	jarvisctl violations
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jarvisctl:", err)
		os.Exit(1)
	}
}

// request mirrors jarvisd's protocol.
type request struct {
	Op     string `json:"op"`
	Device string `json:"device,omitempty"`
	Action string `json:"action,omitempty"`
}

// response mirrors jarvisd's protocol.
type response struct {
	OK         bool     `json:"ok"`
	Error      string   `json:"error,omitempty"`
	State      []string `json:"state,omitempty"`
	Action     string   `json:"action,omitempty"`
	Unsafe     bool     `json:"unsafe,omitempty"`
	Violations int      `json:"violations,omitempty"`
	Minute     int      `json:"minute,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("jarvisctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7463", "jarvisd address")
	timeout := fs.Duration("timeout", 5*time.Second, "dial/roundtrip timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req, err := buildRequest(fs.Args())
	if err != nil {
		return err
	}
	resp, err := roundTrip(*addr, *timeout, req)
	if err != nil {
		return err
	}
	return render(out, req, resp)
}

func buildRequest(args []string) (request, error) {
	if len(args) == 0 {
		return request{}, fmt.Errorf("expected a command: state|event <device> <action>|recommend|violations")
	}
	switch args[0] {
	case "state", "recommend", "violations":
		if len(args) != 1 {
			return request{}, fmt.Errorf("%s takes no arguments", args[0])
		}
		return request{Op: args[0]}, nil
	case "event":
		if len(args) != 3 {
			return request{}, fmt.Errorf("usage: event <device> <action>")
		}
		return request{Op: "event", Device: args[1], Action: args[2]}, nil
	}
	return request{}, fmt.Errorf("unknown command %q", args[0])
}

func roundTrip(addr string, timeout time.Duration, req request) (response, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return response{}, fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return response{}, err
	}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return response{}, fmt.Errorf("send: %w", err)
	}
	var resp response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return response{}, fmt.Errorf("receive: %w", err)
	}
	return resp, nil
}

func render(out io.Writer, req request, resp response) error {
	if !resp.OK {
		return fmt.Errorf("daemon: %s", resp.Error)
	}
	switch req.Op {
	case "state":
		fmt.Fprintf(out, "minute %02d:%02d, %d violation(s)\n", resp.Minute/60, resp.Minute%60, resp.Violations)
		for _, s := range resp.State {
			fmt.Fprintln(out, " ", s)
		}
	case "event":
		verdict := "safe"
		if resp.Unsafe {
			verdict = "UNSAFE (flagged)"
		}
		fmt.Fprintf(out, "applied [%s]; state now:\n  %s\n", verdict, strings.Join(resp.State, "\n  "))
	case "recommend":
		fmt.Fprintf(out, "recommended action at %02d:%02d: %s\n", resp.Minute/60, resp.Minute%60, resp.Action)
	case "violations":
		fmt.Fprintf(out, "%d violation(s) observed\n", resp.Violations)
	}
	return nil
}
