// Command jarvisctl is a tiny client for the jarvisd hub daemon:
//
//	jarvisctl -addr 127.0.0.1:7463 state
//	jarvisctl -addr 127.0.0.1:7463,127.0.0.1:7473 recommend   (primary,standby failover)
//	jarvisctl promote
//	jarvisctl event oven power_on
//	jarvisctl recommend
//	jarvisctl violations
//	jarvisctl stats
//	jarvisctl -format prom stats
//	jarvisctl -n 5 -slowest trace
//	jarvisctl replay
//	jarvisctl alerts
//	jarvisctl slo
//	jarvisctl -debug-addr 127.0.0.1:7464,127.0.0.1:7474 top
//	jarvisctl -debug-addr 127.0.0.1:7464,127.0.0.1:7474 -once -format json top
//
// Protocol commands negotiate the length-prefixed binary codec by default
// and silently fall back to JSON lines against daemons that predate it;
// -wire binary|json pins the codec instead.
//
// alerts and slo render the daemon's policy-health surface: alerts shows
// the firing/resolved alert state plus the latest shadow-evaluation
// report (non-zero exit while anything fires), slo shows each objective's
// rolling-window error-budget burn rate (non-zero exit when out of SLO).
//
// top is the fleet view: -debug-addr takes a comma-separated list of
// daemons, each polled concurrently, and renders one role-aware row per
// daemon (primary vs follower, replication lag, firing alerts, recommend
// throughput, and a p99 sparkline from the on-disk metric history). It
// refreshes every -interval; -once renders a single poll, and
// -once -format json emits the machine-readable report scripts consume.
//
// stats, trace, and replay talk to the daemon's debug HTTP listener
// (-debug-addr) instead of the TCP protocol: stats renders the /metrics
// telemetry snapshot (-format text|json|prom picks the representation),
// trace fetches recent sampled request traces from /debug/traces and prints
// each span tree with durations and annotations, and replay asks the daemon
// (via /debug/replay) to deterministically re-execute its own WAL and
// verify the regenerated decisions against its decision log — exiting
// non-zero if the daemon cannot reproduce its own history.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"jarvis/internal/health"
	"jarvis/internal/replay"
	"jarvis/internal/telemetry"
	"jarvis/internal/trace"
	"jarvis/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jarvisctl:", err)
		os.Exit(1)
	}
}

// request mirrors jarvisd's protocol.
type request struct {
	Op     string `json:"op"`
	Device string `json:"device,omitempty"`
	Action string `json:"action,omitempty"`
}

// response mirrors jarvisd's protocol.
type response struct {
	OK           bool     `json:"ok"`
	Error        string   `json:"error,omitempty"`
	State        []string `json:"state,omitempty"`
	Action       string   `json:"action,omitempty"`
	Unsafe       bool     `json:"unsafe,omitempty"`
	Violations   int      `json:"violations,omitempty"`
	Minute       int      `json:"minute,omitempty"`
	Degraded     int      `json:"degraded,omitempty"`
	Q            float64  `json:"q,omitempty"`
	Busy         bool     `json:"busy,omitempty"`
	RetryAfterMs int      `json:"retryAfterMs,omitempty"`
	Role         string   `json:"role,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("jarvisctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7463", "jarvisd address, or a comma-separated primary,standby list tried in order")
	debugAddr := fs.String("debug-addr", "127.0.0.1:7464", "jarvisd debug (metrics) address")
	timeout := fs.Duration("timeout", 5*time.Second, "dial/roundtrip timeout")
	retries := fs.Int("retries", 3, "retries after a connection failure or busy rejection (0 = single attempt)")
	wireMode := fs.String("wire", "auto", "protocol codec: auto (negotiate binary, fall back to JSON) | binary | json")
	format := fs.String("format", "text", "stats representation: text | json | prom")
	traceN := fs.Int("n", 0, "trace: how many traces to fetch (0 = all retained)")
	slowest := fs.Bool("slowest", false, "trace: rank by duration instead of recency")
	once := fs.Bool("once", false, "top: render a single poll and exit instead of refreshing")
	interval := fs.Duration("interval", 2*time.Second, "top: refresh cadence of the live view")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch rest := fs.Args(); {
	case len(rest) > 0 && rest[0] == "stats":
		if len(rest) != 1 {
			return fmt.Errorf("stats takes no arguments")
		}
		return runStats(*debugAddr, *timeout, *format, out)
	case len(rest) > 0 && rest[0] == "trace":
		if len(rest) != 1 {
			return fmt.Errorf("trace takes no arguments")
		}
		return runTrace(*debugAddr, *timeout, *traceN, *slowest, out)
	case len(rest) > 0 && rest[0] == "replay":
		if len(rest) != 1 {
			return fmt.Errorf("replay takes no arguments")
		}
		return runReplay(*debugAddr, *timeout, out)
	case len(rest) > 0 && rest[0] == "alerts":
		if len(rest) != 1 {
			return fmt.Errorf("alerts takes no arguments")
		}
		return runAlerts(*debugAddr, *timeout, out)
	case len(rest) > 0 && rest[0] == "slo":
		if len(rest) != 1 {
			return fmt.Errorf("slo takes no arguments")
		}
		return runSLO(*debugAddr, *timeout, out)
	case len(rest) > 0 && rest[0] == "top":
		if len(rest) != 1 {
			return fmt.Errorf("top takes no arguments")
		}
		return runTop(splitAddrs(*debugAddr), *timeout, *interval, *once, *format, out)
	}
	req, err := buildRequest(fs.Args())
	if err != nil {
		return err
	}
	addrs := splitAddrs(*addr)
	if len(addrs) == 0 {
		return fmt.Errorf("-addr is empty")
	}
	resp, err := dispatchRequest(*wireMode, addrs, *timeout, *retries, req, time.Sleep)
	if err != nil {
		return err
	}
	return render(out, req, resp)
}

// splitAddrs parses a comma-separated address list, dropping empty
// entries so trailing commas are harmless.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// roundTripRetry retries transient failures — a connection that cannot be
// made or dies mid-exchange, or an admission-control busy rejection — with
// jittered exponential backoff. A busy daemon's RetryAfterMs hint, when
// present, overrides the backoff base for that attempt. Protocol-level
// errors (resp.Error without Busy) are never retried: the daemon answered,
// it just said no. The client exits non-zero only once every attempt is
// exhausted.
func roundTripRetry(addrs []string, timeout time.Duration, retries int, req request, sleep func(time.Duration)) (response, error) {
	return retryLoop(roundTrip, addrs, timeout, retries, req, sleep)
}

// retryLoop is roundTripRetry over any single-exchange transport; the
// binary codec plugs in here with the same busy/backoff semantics. A
// wire.ErrNotBinary answer is permanent (the daemon spoke, in JSON) and
// short-circuits the retries so auto-negotiation can fall back at once.
//
// With several addresses (primary,standby failover), a transport failure
// rotates to the next address before sleeping, while a busy rejection
// stays put — the daemon answered, and its RetryAfterMs hint is about
// that daemon. The attempt budget stretches to cover at least one try per
// address, and the final error names every address exhausted.
func retryLoop(rt func(string, time.Duration, request) (response, error), addrs []string, timeout time.Duration, retries int, req request, sleep func(time.Duration)) (response, error) {
	backoff := 50 * time.Millisecond
	attempts := retries + 1
	if len(addrs) > attempts {
		attempts = len(addrs)
	}
	cur := 0
	for attempt := 0; ; attempt++ {
		resp, err := rt(addrs[cur], timeout, req)
		if err != nil && errors.Is(err, wire.ErrNotBinary) {
			return response{}, err
		}
		var lastErr error
		switch {
		case err == nil && !resp.Busy:
			return resp, nil
		case err == nil:
			lastErr = fmt.Errorf("daemon busy: %s", resp.Error)
		default:
			lastErr = err
			cur = (cur + 1) % len(addrs)
		}
		if attempt >= attempts-1 {
			if len(addrs) > 1 {
				return response{}, fmt.Errorf("%w (exhausted %d attempt(s) across %s)",
					lastErr, attempt+1, strings.Join(addrs, ", "))
			}
			if attempt > 0 {
				return response{}, fmt.Errorf("%w (after %d attempts)", lastErr, attempt+1)
			}
			return response{}, lastErr
		}
		wait := backoff
		if err == nil && resp.RetryAfterMs > 0 {
			wait = time.Duration(resp.RetryAfterMs) * time.Millisecond
		}
		// Half fixed, half jitter: concurrent clients retrying off the same
		// rejection spread out instead of stampeding back in lockstep.
		wait = wait/2 + time.Duration(rand.Int63n(int64(wait/2)+1))
		sleep(wait)
		backoff *= 2
	}
}

func buildRequest(args []string) (request, error) {
	if len(args) == 0 {
		return request{}, fmt.Errorf("expected a command: state|event <device> <action>|recommend|violations|promote|stats|trace|replay|alerts|slo|top")
	}
	switch args[0] {
	case "state", "recommend", "violations", "promote":
		if len(args) != 1 {
			return request{}, fmt.Errorf("%s takes no arguments", args[0])
		}
		return request{Op: args[0]}, nil
	case "event":
		if len(args) != 3 {
			return request{}, fmt.Errorf("usage: event <device> <action>")
		}
		return request{Op: "event", Device: args[1], Action: args[2]}, nil
	}
	return request{}, fmt.Errorf("unknown command %q", args[0])
}

// alertsDocument mirrors jarvisd's /debug/alerts body.
type alertsDocument struct {
	Stats   health.EngineStats   `json:"stats"`
	Firing  []health.Alert       `json:"firing"`
	History []health.Transition  `json:"history"`
	Shadow  *health.ShadowReport `json:"shadow,omitempty"`
}

// runAlerts fetches /debug/alerts and renders the firing alerts, recent
// transitions, and the latest shadow-evaluation report. Firing alerts
// exit non-zero so the command doubles as a scriptable health probe.
func runAlerts(addr string, timeout time.Duration, out io.Writer) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get("http://" + addr + "/debug/alerts")
	if err != nil {
		return fmt.Errorf("fetch alerts from %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("alerts endpoint returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var doc alertsDocument
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("decode alerts: %w", err)
	}
	st := doc.Stats
	fmt.Fprintf(out, "alerting: %d rule(s), %d evaluation(s), %d fired, %d resolved\n",
		st.Rules, st.Evaluations, st.Fired, st.Resolved)
	if len(doc.Firing) == 0 {
		fmt.Fprintln(out, "no alerts firing")
	} else {
		fmt.Fprintf(out, "%d alert(s) FIRING:\n", len(doc.Firing))
		for _, a := range doc.Firing {
			fmt.Fprintf(out, "  [%s] %s: value %g %s %g (breaching %d eval(s), since %s)\n",
				a.Severity, a.Rule, a.Value, a.Op, a.Threshold, a.Count,
				time.Unix(0, a.FiredUnixNs).Format(time.RFC3339))
			if a.Description != "" {
				fmt.Fprintf(out, "      %s\n", a.Description)
			}
		}
	}
	if len(doc.History) > 0 {
		fmt.Fprintln(out, "recent transitions:")
		for _, tr := range doc.History {
			fmt.Fprintf(out, "  %s %-8s %s (value %g %s %g)\n",
				time.Unix(0, tr.UnixNs).Format(time.RFC3339), tr.State, tr.Rule,
				tr.Value, tr.Op, tr.Threshold)
		}
	}
	if sh := doc.Shadow; sh != nil {
		fmt.Fprintf(out, "shadow evaluation at %s: divergence %.3f over %d recommendation(s), reward delta %+.3f, violation delta %+d (%dms)\n",
			time.Unix(0, sh.UnixNs).Format(time.RFC3339), sh.DivergenceRate,
			sh.Recommends, sh.RewardDelta, sh.ViolationDelta, sh.DurationMs)
		if sh.Err != "" {
			fmt.Fprintf(out, "  last shadow error: %s\n", sh.Err)
		}
	}
	if len(doc.Firing) > 0 {
		return fmt.Errorf("%d alert(s) firing", len(doc.Firing))
	}
	return nil
}

// runSLO fetches /debug/slo and renders each objective's windowed burn
// rate. An objective out of SLO (burn > 1) exits non-zero.
func runSLO(addr string, timeout time.Duration, out io.Writer) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get("http://" + addr + "/debug/slo")
	if err != nil {
		return fmt.Errorf("fetch slo from %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("slo endpoint returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var rep health.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return fmt.Errorf("decode slo: %w", err)
	}
	fmt.Fprintf(out, "SLO window %s (%d sample(s) spanning %s)\n",
		time.Duration(rep.WindowMs)*time.Millisecond, rep.Samples,
		time.Duration(rep.SpanMs)*time.Millisecond)
	missed := 0
	for _, o := range rep.Objectives {
		status := "ok"
		if !o.Met {
			status = "OUT OF SLO"
			missed++
		}
		fmt.Fprintf(out, "  %-26s %-8s burn %.3f (%d bad / %d total)", o.Name, o.Kind, o.BurnRate, o.Bad, o.Total)
		if o.P99Ns > 0 {
			fmt.Fprintf(out, " p99=%s", time.Duration(o.P99Ns))
		}
		fmt.Fprintf(out, " [%s]\n", status)
	}
	if missed > 0 {
		return fmt.Errorf("%d objective(s) out of SLO", missed)
	}
	return nil
}

func roundTrip(addr string, timeout time.Duration, req request) (response, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return response{}, fmt.Errorf("dial %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return response{}, err
	}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return response{}, fmt.Errorf("send: %w", err)
	}
	var resp response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		return response{}, fmt.Errorf("receive: %w", err)
	}
	return resp, nil
}

func render(out io.Writer, req request, resp response) error {
	if !resp.OK {
		return fmt.Errorf("daemon: %s", resp.Error)
	}
	switch req.Op {
	case "state":
		fmt.Fprintf(out, "minute %02d:%02d, %d violation(s)\n", resp.Minute/60, resp.Minute%60, resp.Violations)
		for _, s := range resp.State {
			fmt.Fprintln(out, " ", s)
		}
	case "event":
		verdict := "safe"
		if resp.Unsafe {
			verdict = "UNSAFE (flagged)"
		}
		fmt.Fprintf(out, "applied [%s]; state now:\n  %s\n", verdict, strings.Join(resp.State, "\n  "))
	case "recommend":
		fmt.Fprintf(out, "recommended action at %02d:%02d: %s (q=%.4f)\n",
			resp.Minute/60, resp.Minute%60, resp.Action, resp.Q)
		if resp.Degraded > 0 {
			fmt.Fprintf(out, "warning: %d recommendation(s) degraded to the safe no-op\n", resp.Degraded)
		}
	case "violations":
		fmt.Fprintf(out, "%d violation(s) observed\n", resp.Violations)
	case "promote":
		// The daemon acknowledges and promotes asynchronously (it has to
		// drain the buffered stream tail first), so the role in the answer
		// is usually still "follower".
		fmt.Fprintf(out, "promotion requested (role at answer time: %s)\n", resp.Role)
	}
	return nil
}

// runStats fetches one telemetry snapshot from the daemon's debug listener
// and renders it. Any non-200 answer is an error, which is what the
// `make stats` smoke probe relies on. format selects the representation:
// the human summary (text), the raw JSON snapshot (json), or Prometheus
// text exposition (prom) — the latter two copy the daemon's bytes through
// untouched, so the output is exactly what a scraper would see.
func runStats(addr string, timeout time.Duration, format string, out io.Writer) error {
	url := "http://" + addr + "/metrics"
	switch format {
	case "text", "json":
	case "prom", "prometheus":
		url += "?format=prom"
	default:
		return fmt.Errorf("unknown -format %q (want text, json, or prom)", format)
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("fetch metrics from %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics endpoint returned %s", resp.Status)
	}
	if format != "text" {
		_, err := io.Copy(out, resp.Body)
		return err
	}
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decode metrics: %w", err)
	}
	renderStats(out, snap)
	return nil
}

// runTrace fetches sampled request traces from /debug/traces and prints
// one indented span tree per trace, children nested under parents with
// durations and annotations inline.
func runTrace(addr string, timeout time.Duration, n int, slowest bool, out io.Writer) error {
	url := fmt.Sprintf("http://%s/debug/traces?n=%d", addr, n)
	if slowest {
		url += "&sort=slowest"
	}
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("fetch traces from %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("traces endpoint returned %s", resp.Status)
	}
	dec := json.NewDecoder(resp.Body)
	count := 0
	for dec.More() {
		var td trace.TraceData
		if err := dec.Decode(&td); err != nil {
			return fmt.Errorf("decode trace: %w", err)
		}
		renderTrace(out, &td)
		count++
	}
	if count == 0 {
		fmt.Fprintln(out, "no traces retained (is the daemon running with -trace-sample?)")
	}
	return nil
}

// runReplay asks the daemon to verify itself: /debug/replay re-executes
// the daemon's WAL through the deterministic replay engine and diffs the
// regenerated decision stream against the recorded decision log. 200 means
// the daemon reproduces its own history bit-for-bit; 409 carries the first
// divergence; anything else is an operational error. The replay may need
// to rebuild the learning state, so give it a generous -timeout.
func runReplay(addr string, timeout time.Duration, out io.Writer) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get("http://" + addr + "/debug/replay")
	if err != nil {
		return fmt.Errorf("fetch replay verification from %s: %w", addr, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusConflict:
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("replay endpoint returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var rep replay.VerifyReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return fmt.Errorf("decode replay report: %w", err)
	}
	st := rep.Replayed
	fmt.Fprintf(out, "replayed %d events, %d transitions, %d recommendations (%d learn steps, %d violations)\n",
		st.Events, st.Transitions, st.Recommends, st.LearnSteps, st.Violations)
	if rep.Restored {
		fmt.Fprintf(out, "seeded from checkpoint generation %d\n", rep.CheckpointGen)
	}
	if rep.Match {
		fmt.Fprintf(out, "decision streams MATCH over %d compared decision(s)\n", rep.Compared)
		return nil
	}
	if d := rep.Divergence; d != nil {
		fmt.Fprintf(out, "DIVERGENCE at index %d (seq %d, kind %s, minute %d): %s\n",
			d.Index, d.Seq, d.Kind, d.Minute, d.Reason)
		fmt.Fprintf(out, "  recorded: action=%q q=%g verdict=%q\n", d.RecordedAction, d.RecordedQ, d.RecordedVerdict)
		fmt.Fprintf(out, "  replayed: action=%q q=%g verdict=%q\n", d.ReplayedAction, d.ReplayedQ, d.ReplayedVerdict)
	}
	return fmt.Errorf("daemon could not reproduce its own decision log")
}

// renderTrace prints one span tree. Spans are stored flat in creation
// order with parent indices, so depth is the length of the parent chain.
func renderTrace(out io.Writer, td *trace.TraceData) {
	fmt.Fprintf(out, "trace %s %s %s at %s\n", td.ID, td.Name,
		time.Duration(td.DurNs), time.Unix(0, td.UnixNs).Format(time.RFC3339Nano))
	depths := make([]int, len(td.Spans))
	for i, sp := range td.Spans {
		if i == 0 {
			continue
		}
		if sp.Parent >= 0 && sp.Parent < i {
			depths[i] = depths[sp.Parent] + 1
		}
		fmt.Fprintf(out, "%s%s %s", strings.Repeat("  ", depths[i]), sp.Name, time.Duration(sp.DurNs))
		for _, an := range sp.Annotations {
			fmt.Fprintf(out, " %s=%s", an.K, an.V)
		}
		fmt.Fprintln(out)
	}
}

func renderStats(out io.Writer, snap telemetry.Snapshot) {
	fmt.Fprintf(out, "snapshot at %s\n", time.Unix(0, snap.UnixNs).Format(time.RFC3339))
	if len(snap.Counters) > 0 {
		fmt.Fprintln(out, "counters:")
		for _, name := range telemetry.SortedNames(snap.Counters) {
			fmt.Fprintf(out, "  %-42s %d\n", name, snap.Counters[name])
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintln(out, "gauges:")
		for _, name := range telemetry.SortedNames(snap.Gauges) {
			fmt.Fprintf(out, "  %-42s %g\n", name, snap.Gauges[name])
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Fprintln(out, "histograms:")
		for _, name := range telemetry.SortedNames(snap.Histograms) {
			h := snap.Histograms[name]
			fmt.Fprintf(out, "  %-42s n=%d p50=%s p95=%s p99=%s max=%s\n",
				name, h.Count, time.Duration(h.P50Ns), time.Duration(h.P95Ns),
				time.Duration(h.P99Ns), time.Duration(h.MaxNs))
		}
	}
	// Observability-loss indicators, surfaced even when zero so an operator
	// can see the collection pipeline itself is intact: events the ring
	// dropped before any scrape, and completed traces currently retained.
	fmt.Fprintf(out, "telemetry events dropped: %d\n", snap.Counters["telemetry.events.dropped"])
	fmt.Fprintf(out, "traces sampled: %g\n", snap.Gauges["jarvisd.traces.sampled"])
}
