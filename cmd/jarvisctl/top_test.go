package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeDebugStatus serves one canned /healthz body with a fixed status
// code (fakeDebug always answers 200).
func fakeDebugStatus(t *testing.T, status int, body string) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		w.WriteHeader(status)
		fmt.Fprint(w, body)
	}))
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// fakeFleetPrimary is a /healthz body for a primary with a metric
// history, one firing alert, and a hot SLO burn.
const fakeFleetPrimary = `{
  "status": "ok", "role": "primary", "violations": 3, "queueDepth": 1,
  "alertsFiring": [{"rule": "unsafe-event-burst", "severity": "page"}],
  "sloBurn": {"safety-violations": 1.4, "recommend-p99": 0.02},
  "tsdb": {"points": 40, "sizeBytes": 8192},
  "telemetrySeries": 33, "telemetryLabelsDropped": 2
}`

// fakeFleetFollower follows the primary with a small lag and no store.
const fakeFleetFollower = `{
  "status": "ok", "role": "follower", "violations": 0, "queueDepth": 0,
  "replication": {"followAddr": "127.0.0.1:7463", "connected": true, "lagRecords": 5},
  "telemetrySeries": 21
}`

const fakeFleetRate = `{"series": "jarvisd.requests{op=\"recommend\"}", "fn": "rate", "ok": true, "value": 12.5}`

const fakeFleetRaw = `{"series": "jarvisd.request.latency", "fn": "raw", "ok": true,
  "samples": [{"tsNs": 1, "value": 800}, {"tsNs": 2, "value": 1600}, {"tsNs": 3, "value": 1200}]}`

// rateQuery is the exact query string pollDaemon issues for the labeled
// throughput series (url.QueryEscape of the flat name).
const rateQuery = "/debug/tsdb?series=jarvisd.requests%7Bop%3D%22recommend%22%7D&fn=rate"
const rawQuery = "/debug/tsdb?series=jarvisd.request.latency&fn=raw"

func TestTopOnce(t *testing.T) {
	primary := fakeDebug(t, map[string]string{
		"/healthz": fakeFleetPrimary,
		rateQuery:  fakeFleetRate,
		rawQuery:   fakeFleetRaw,
	})
	follower := fakeDebug(t, map[string]string{"/healthz": fakeFleetFollower})

	var buf bytes.Buffer
	if err := run([]string{"-debug-addr", primary + "," + follower, "-once", "top"}, &buf); err != nil {
		t.Fatalf("top -once: %v", err)
	}
	got := buf.String()
	for _, want := range []string{
		`jarvisd.requests{op="recommend"}`, // legend names the labeled series
		"primary", "follower",
		"12.50", // recommend rate from the tsdb query
		"5",     // follower lag records
		"unsafe-event-burst[page]",
		"safety-violations=1.40", // burning objective detail line
		"dropping labels: 2",
		"▁", // sparkline rendered from the raw samples
	} {
		if !strings.Contains(got, want) {
			t.Errorf("top output missing %q:\n%s", want, got)
		}
	}
	// The follower has no store, so its row degrades to bare dashes
	// rather than erroring the whole view.
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "follower") && !strings.Contains(line, "-") {
			t.Errorf("follower row should carry dashes for missing tsdb data: %q", line)
		}
	}
}

func TestTopOnceJSON(t *testing.T) {
	primary := fakeDebug(t, map[string]string{
		"/healthz": fakeFleetPrimary,
		rateQuery:  fakeFleetRate,
		rawQuery:   fakeFleetRaw,
	})
	follower := fakeDebug(t, map[string]string{"/healthz": fakeFleetFollower})

	var buf bytes.Buffer
	if err := run([]string{"-debug-addr", primary + "," + follower, "-once", "-format", "json", "top"}, &buf); err != nil {
		t.Fatalf("top -once -format json: %v", err)
	}
	var rep topReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("top json output does not parse: %v\n%s", err, buf.String())
	}
	if len(rep.Daemons) != 2 {
		t.Fatalf("got %d daemons, want 2", len(rep.Daemons))
	}
	p, f := rep.Daemons[0], rep.Daemons[1]
	if p.Role != "primary" || f.Role != "follower" {
		t.Errorf("roles = %q, %q; polling order should match -debug-addr order", p.Role, f.Role)
	}
	if !p.RecommendRateOK || p.RecommendPerSec != 12.5 {
		t.Errorf("primary rate = %+v, want 12.5 from the tsdb query", p)
	}
	if p.P99Ns != 1200 || len(p.P99SeriesNs) != 3 {
		t.Errorf("primary p99 = %d over %d samples, want 1200 over 3", p.P99Ns, len(p.P99SeriesNs))
	}
	if f.ReplicaLagRecords != 5 || !f.ReplicaConnected {
		t.Errorf("follower replication = %+v, want lag 5 connected", f)
	}
	if f.RecommendRateOK || f.P99Ns != 0 {
		t.Errorf("follower has no tsdb; rate/p99 should be absent: %+v", f)
	}
}

// TestTopUnreachable: a dead daemon gets an UNREACHABLE row; if every
// daemon is dead, -once exits non-zero so smoke scripts fail loudly.
func TestTopUnreachable(t *testing.T) {
	primary := fakeDebug(t, map[string]string{"/healthz": fakeFleetPrimary})
	var buf bytes.Buffer
	if err := run([]string{"-debug-addr", primary + ",127.0.0.1:1", "-once", "top"}, &buf); err != nil {
		t.Fatalf("top with one live daemon should succeed: %v", err)
	}
	if !strings.Contains(buf.String(), "UNREACHABLE") {
		t.Errorf("dead daemon row missing UNREACHABLE:\n%s", buf.String())
	}

	buf.Reset()
	if err := run([]string{"-debug-addr", "127.0.0.1:1", "-once", "top"}, &buf); err == nil {
		t.Error("top -once with no live daemon should exit non-zero")
	}
}

// TestTopDegradedDaemon: /healthz answers 503 once recommendations
// degrade, but the report inside is still valid and must render.
func TestTopDegradedDaemon(t *testing.T) {
	addr := fakeDebugStatus(t, 503, `{"status": "degraded", "role": "primary", "violations": 1, "telemetrySeries": 9}`)
	var buf bytes.Buffer
	if err := run([]string{"-debug-addr", addr, "-once", "top"}, &buf); err != nil {
		t.Fatalf("top against a degraded daemon: %v", err)
	}
	if !strings.Contains(buf.String(), "degraded") {
		t.Errorf("degraded status not rendered:\n%s", buf.String())
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 12); got != "" {
		t.Errorf("empty series sparkline = %q, want empty", got)
	}
	if got := sparkline([]float64{1, 1, 1}, 12); got != "▁▁▁" {
		t.Errorf("flat series = %q, want all-minimum bars", got)
	}
	got := sparkline([]float64{0, 50, 100}, 12)
	if r := []rune(got); len(r) != 3 || r[0] != '▁' || r[2] != '█' {
		t.Errorf("ramp series = %q, want min..max ramp", got)
	}
	// Width caps keep the live view stable: only the newest points show.
	if got := sparkline([]float64{9, 9, 9, 9, 1}, 2); []rune(got)[1] != '▁' {
		t.Errorf("width-capped series = %q, want the newest 2 points", got)
	}
}
