package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// jarvisctl top is the fleet view: it polls every daemon's debug listener
// concurrently (-debug-addr takes a comma-separated list), merges the
// /healthz role/lag/alert state with two /debug/tsdb range queries — the
// labeled recommend throughput and the request-latency p99 history — and
// renders one row per daemon. Live mode redraws every -interval;
// `-once -format json` emits a single machine-readable report instead,
// which is what the `make top` smoke probe scripts against.
//
// The tsdb queries degrade gracefully: a daemon running without -tsdb
// still gets a row (role, lag, alerts), just no rate or sparkline.

// topRateSeries is the labeled series the throughput column reads. Flat
// snapshot names address vec children, so the fleet view exercises the
// same addressing the SLO objectives use.
const topRateSeries = `jarvisd.requests{op="recommend"}`

// topLatencySeries feeds the p99 sparkline; fn=raw on a histogram series
// yields one p99 sample per stored snapshot.
const topLatencySeries = "jarvisd.request.latency"

// topHealth mirrors the /healthz fields the fleet view renders.
type topHealth struct {
	Status      string `json:"status"`
	Role        string `json:"role"`
	Replication *struct {
		FollowAddr string  `json:"followAddr"`
		Connected  bool    `json:"connected"`
		LagRecords float64 `json:"lagRecords"`
	} `json:"replication,omitempty"`
	Violations   int   `json:"violations"`
	QueueDepth   int64 `json:"queueDepth"`
	AlertsFiring []struct {
		Rule     string `json:"rule"`
		Severity string `json:"severity"`
	} `json:"alertsFiring,omitempty"`
	SLOBurn map[string]float64 `json:"sloBurn,omitempty"`
	TSDB    *struct {
		Points    int   `json:"points"`
		SizeBytes int64 `json:"sizeBytes"`
	} `json:"tsdb,omitempty"`
	TelemetrySeries        int   `json:"telemetrySeries"`
	TelemetryLabelsDropped int64 `json:"telemetryLabelsDropped"`
}

// topQueryBody mirrors the /debug/tsdb query response.
type topQueryBody struct {
	OK      bool    `json:"ok"`
	Value   float64 `json:"value"`
	Samples []struct {
		TsNs  int64   `json:"tsNs"`
		Value float64 `json:"value"`
	} `json:"samples"`
}

// topDaemon is one daemon's row, also the -format json element.
type topDaemon struct {
	Addr                   string             `json:"addr"`
	Err                    string             `json:"error,omitempty"`
	Role                   string             `json:"role,omitempty"`
	Status                 string             `json:"status,omitempty"`
	Violations             int                `json:"violations,omitempty"`
	QueueDepth             int64              `json:"queueDepth,omitempty"`
	ReplicaConnected       bool               `json:"replicaConnected,omitempty"`
	ReplicaLagRecords      float64            `json:"replicaLagRecords,omitempty"`
	RecommendPerSec        float64            `json:"recommendPerSec,omitempty"`
	RecommendRateOK        bool               `json:"recommendRateOk,omitempty"`
	P99Ns                  int64              `json:"p99Ns,omitempty"`
	P99SeriesNs            []float64          `json:"p99SeriesNs,omitempty"`
	AlertsFiring           []string           `json:"alertsFiring,omitempty"`
	SLOBurn                map[string]float64 `json:"sloBurn,omitempty"`
	TSDBPoints             int                `json:"tsdbPoints,omitempty"`
	TSDBSizeBytes          int64              `json:"tsdbSizeBytes,omitempty"`
	TelemetrySeries        int                `json:"telemetrySeries,omitempty"`
	TelemetryLabelsDropped int64              `json:"telemetryLabelsDropped,omitempty"`
}

// topReport is the -format json body: one poll of the whole fleet.
type topReport struct {
	UnixNs  int64       `json:"unixNs"`
	Daemons []topDaemon `json:"daemons"`
}

// runTop polls the fleet once per interval and renders it until
// interrupted; with once it renders a single poll and exits, non-zero if
// no daemon answered at all.
func runTop(addrs []string, timeout, interval time.Duration, once bool, format string, out io.Writer) error {
	if len(addrs) == 0 {
		return fmt.Errorf("-debug-addr is empty")
	}
	switch format {
	case "text", "json":
	default:
		return fmt.Errorf("unknown -format %q for top (want text or json)", format)
	}
	client := &http.Client{Timeout: timeout}
	first := true
	for {
		rep := pollFleet(client, addrs)
		if format == "json" {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return err
			}
		} else {
			if !once && !first {
				fmt.Fprint(out, "\x1b[2J\x1b[H") // clear and re-home the live view
			}
			renderTop(out, rep)
		}
		if once {
			alive := 0
			for _, d := range rep.Daemons {
				if d.Err == "" {
					alive++
				}
			}
			if alive == 0 {
				return fmt.Errorf("no daemon answered (asked %s)", strings.Join(addrs, ", "))
			}
			return nil
		}
		first = false
		time.Sleep(interval)
	}
}

// pollFleet fetches every daemon concurrently; rows come back in the
// -debug-addr order regardless of who answered first.
func pollFleet(client *http.Client, addrs []string) topReport {
	rep := topReport{UnixNs: time.Now().UnixNano(), Daemons: make([]topDaemon, len(addrs))}
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			rep.Daemons[i] = pollDaemon(client, addr)
		}(i, addr)
	}
	wg.Wait()
	return rep
}

// pollDaemon assembles one daemon's row: /healthz (which answers 503 when
// degraded — still a valid report) plus the two tsdb range queries.
func pollDaemon(client *http.Client, addr string) topDaemon {
	d := topDaemon{Addr: addr}
	resp, err := client.Get("http://" + addr + "/healthz")
	if err != nil {
		d.Err = err.Error()
		return d
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		d.Err = fmt.Sprintf("healthz returned %s", resp.Status)
		return d
	}
	var h topHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		d.Err = fmt.Sprintf("decode healthz: %v", err)
		return d
	}
	d.Role, d.Status = h.Role, h.Status
	d.Violations, d.QueueDepth = h.Violations, h.QueueDepth
	d.SLOBurn = h.SLOBurn
	d.TelemetrySeries = h.TelemetrySeries
	d.TelemetryLabelsDropped = h.TelemetryLabelsDropped
	if h.Replication != nil {
		d.ReplicaConnected = h.Replication.Connected
		d.ReplicaLagRecords = h.Replication.LagRecords
	}
	for _, a := range h.AlertsFiring {
		d.AlertsFiring = append(d.AlertsFiring, fmt.Sprintf("%s[%s]", a.Rule, a.Severity))
	}
	if h.TSDB != nil {
		d.TSDBPoints, d.TSDBSizeBytes = h.TSDB.Points, h.TSDB.SizeBytes
		if q, ok := topQuery(client, addr, topRateSeries, "rate"); ok {
			d.RecommendPerSec, d.RecommendRateOK = q.Value, q.OK
		}
		if q, ok := topQuery(client, addr, topLatencySeries, "raw"); ok {
			for _, s := range q.Samples {
				d.P99SeriesNs = append(d.P99SeriesNs, s.Value)
			}
			if n := len(q.Samples); n > 0 {
				d.P99Ns = int64(q.Samples[n-1].Value)
			}
		}
	}
	return d
}

// topQuery runs one /debug/tsdb range query; ok is false on any transport
// or status failure so a daemon without a store degrades to a bare row.
func topQuery(client *http.Client, addr, series, fn string) (topQueryBody, bool) {
	resp, err := client.Get("http://" + addr + "/debug/tsdb?series=" +
		url.QueryEscape(series) + "&fn=" + fn)
	if err != nil {
		return topQueryBody{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return topQueryBody{}, false
	}
	var q topQueryBody
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		return topQueryBody{}, false
	}
	return q, true
}

// sparkBlocks are the eight block heights the sparkline scales into.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the last width values scaled against their max. A
// flat series renders as all-minimum bars rather than disappearing.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(sparkBlocks)-1))
		}
		b.WriteRune(sparkBlocks[idx])
	}
	return b.String()
}

// renderTop prints the fleet table plus per-daemon alert/burn detail
// lines for anything unhealthy.
func renderTop(out io.Writer, rep topReport) {
	fmt.Fprintf(out, "fleet at %s — %d daemon(s); rate=%s, p99=%s\n",
		time.Unix(0, rep.UnixNs).Format("15:04:05"), len(rep.Daemons),
		topRateSeries, topLatencySeries)
	fmt.Fprintf(out, "%-22s %-9s %-9s %5s %5s %6s %9s %10s %-12s %s\n",
		"ADDR", "ROLE", "STATUS", "VIOL", "QUEUE", "LAG", "REC/S", "P99", "P99 TREND", "ALERTS")
	for _, d := range rep.Daemons {
		if d.Err != "" {
			fmt.Fprintf(out, "%-22s %s\n", d.Addr, "UNREACHABLE: "+d.Err)
			continue
		}
		lag := "-"
		if d.Role == "follower" {
			lag = fmt.Sprintf("%.0f", d.ReplicaLagRecords)
		}
		rate := "-"
		if d.RecommendRateOK {
			rate = fmt.Sprintf("%.2f", d.RecommendPerSec)
		}
		p99 := "-"
		if d.P99Ns > 0 {
			p99 = time.Duration(d.P99Ns).Round(time.Microsecond).String()
		}
		alerts := "-"
		if len(d.AlertsFiring) > 0 {
			alerts = strings.Join(d.AlertsFiring, ",")
		}
		fmt.Fprintf(out, "%-22s %-9s %-9s %5d %5d %6s %9s %10s %-12s %s\n",
			d.Addr, d.Role, d.Status, d.Violations, d.QueueDepth, lag, rate, p99,
			sparkline(d.P99SeriesNs, 12), alerts)
	}
	// Burn rates over 1 are out of SLO; list them under the table so the
	// one-line rows stay scannable.
	for _, d := range rep.Daemons {
		var hot []string
		for name, burn := range d.SLOBurn {
			if burn > 1 {
				hot = append(hot, fmt.Sprintf("%s=%.2f", name, burn))
			}
		}
		if len(hot) > 0 {
			sort.Strings(hot)
			fmt.Fprintf(out, "  %s burning error budget: %s\n", d.Addr, strings.Join(hot, " "))
		}
		if d.TelemetryLabelsDropped > 0 {
			fmt.Fprintf(out, "  %s dropping labels: %d write(s) over the vec cardinality cap\n",
				d.Addr, d.TelemetryLabelsDropped)
		}
	}
}
