package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"jarvis/internal/telemetry"
)

// fakeDaemon answers one request per connection with canned responses.
func fakeDaemon(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				var req request
				if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&req); err != nil {
					return
				}
				resp := response{OK: true, Minute: 600}
				switch req.Op {
				case "state":
					resp.State = []string{"oven=off"}
					resp.Violations = 2
				case "event":
					if req.Device == "ghost" {
						resp = response{Error: "unknown device"}
					} else {
						resp.State = []string{req.Device + "=on"}
						resp.Unsafe = req.Device == "door-sensor"
					}
				case "recommend":
					resp.Action = "(O, O)"
				case "violations":
					resp.Violations = 3
				}
				_ = json.NewEncoder(conn).Encode(resp)
			}()
		}
	}()
	return ln.Addr().String()
}

func TestCommands(t *testing.T) {
	addr := fakeDaemon(t)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"state"}, "oven=off"},
		{[]string{"event", "oven", "power_on"}, "oven=on"},
		{[]string{"event", "door-sensor", "power_off"}, "UNSAFE"},
		{[]string{"recommend"}, "(O, O)"},
		{[]string{"violations"}, "3 violation"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		args := append([]string{"-addr", addr}, c.args...)
		if err := run(args, &buf); err != nil {
			t.Fatalf("run(%v): %v", c.args, err)
		}
		if !strings.Contains(buf.String(), c.want) {
			t.Errorf("run(%v) = %q, want it to contain %q", c.args, buf.String(), c.want)
		}
	}
}

func TestDaemonError(t *testing.T) {
	addr := fakeDaemon(t)
	var buf bytes.Buffer
	err := run([]string{"-addr", addr, "event", "ghost", "x"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "unknown device") {
		t.Fatalf("daemon error not surfaced: %v", err)
	}
}

func TestArgValidation(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"event", "oven"},
		{"state", "extra"},
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) should error", args)
		}
	}
}

// fakeMetrics serves a canned /metrics snapshot (or a failure status).
func fakeMetrics(t *testing.T, status int, body string) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.WriteHeader(status)
		fmt.Fprint(w, body)
	}))
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

func TestStats(t *testing.T) {
	snap := telemetry.Snapshot{
		UnixNs:   time.Now().UnixNano(),
		Counters: map[string]int64{"jarvisd.requests.state": 7},
		Gauges:   map[string]float64{"rl.epsilon": 0.05},
		Histograms: map[string]telemetry.HistogramStats{
			"jarvisd.request.latency": {Count: 7, P50Ns: 1200, P95Ns: 4000, P99Ns: 9000, MaxNs: 9500},
		},
	}
	body, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	addr := fakeMetrics(t, http.StatusOK, string(body))
	var buf bytes.Buffer
	if err := run([]string{"-debug-addr", addr, "stats"}, &buf); err != nil {
		t.Fatalf("stats: %v", err)
	}
	for _, want := range []string{"jarvisd.requests.state", "7", "rl.epsilon", "jarvisd.request.latency", "p95="} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestStatsNon200(t *testing.T) {
	addr := fakeMetrics(t, http.StatusInternalServerError, "boom")
	var buf bytes.Buffer
	err := run([]string{"-debug-addr", addr, "stats"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("non-200 metrics response not surfaced: %v", err)
	}
}

func TestStatsRejectsArguments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"stats", "extra"}, &buf); err == nil {
		t.Error("stats with arguments should error")
	}
}

func TestDialFailure(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-addr", "127.0.0.1:1", "-timeout", (200 * time.Millisecond).String(), "state"}, &buf)
	if err == nil {
		t.Skip("port 1 unexpectedly reachable")
	}
}

// flakyDaemon kills the first failures connections outright and answers
// the next busyCount requests with a busy rejection before finally
// serving. It reports how many connections it saw.
func flakyDaemon(t *testing.T, failures, busyCount int) (addr string, seen *int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	var n int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			i := atomic.AddInt32(&n, 1)
			go func() {
				defer conn.Close()
				if int(i) <= failures {
					return // die before answering: the client sees a receive error
				}
				var req request
				if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&req); err != nil {
					return
				}
				resp := response{OK: true, Minute: 1, Violations: 5}
				if int(i) <= failures+busyCount {
					resp = response{Error: "overloaded", Busy: true, RetryAfterMs: 1}
				}
				_ = json.NewEncoder(conn).Encode(resp)
			}()
		}
	}()
	return ln.Addr().String(), &n
}

func TestRetrySurvivesFlakyServer(t *testing.T) {
	addr, seen := flakyDaemon(t, 1, 1) // one dead connection, one busy, then ok
	slept := 0
	resp, err := roundTripRetry([]string{addr}, time.Second, 3, request{Op: "violations"},
		func(time.Duration) { slept++ })
	if err != nil {
		t.Fatalf("retry should have recovered: %v", err)
	}
	if !resp.OK || resp.Violations != 5 {
		t.Errorf("resp = %+v, want the served answer", resp)
	}
	if got := atomic.LoadInt32(seen); got != 3 {
		t.Errorf("server saw %d connections, want 3", got)
	}
	if slept != 2 {
		t.Errorf("slept %d times, want 2 (one per failed attempt)", slept)
	}
}

func TestRetryExhaustionFailsOnce(t *testing.T) {
	addr, seen := flakyDaemon(t, 100, 0) // never recovers
	_, err := roundTripRetry([]string{addr}, time.Second, 2, request{Op: "state"},
		func(time.Duration) {})
	if err == nil {
		t.Fatal("exhausted retries should fail")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error %q should report the attempt count", err)
	}
	if got := atomic.LoadInt32(seen); got != 3 {
		t.Errorf("server saw %d connections, want exactly 1 + 2 retries", got)
	}
}

func TestRetryZeroMeansSingleAttempt(t *testing.T) {
	addr, seen := flakyDaemon(t, 100, 0)
	_, err := roundTripRetry([]string{addr}, time.Second, 0, request{Op: "state"},
		func(time.Duration) { t.Error("retries=0 must not sleep") })
	if err == nil {
		t.Fatal("want failure")
	}
	if got := atomic.LoadInt32(seen); got != 1 {
		t.Errorf("server saw %d connections, want 1", got)
	}
}

// deadAddr returns an address nothing listens on: bind, read the port,
// close.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestFailoverRotatesToStandby(t *testing.T) {
	dead := deadAddr(t)
	live, seen := flakyDaemon(t, 0, 0)
	resp, err := roundTripRetry([]string{dead, live}, time.Second, 3,
		request{Op: "violations"}, func(time.Duration) {})
	if err != nil {
		t.Fatalf("failover to the standby should have succeeded: %v", err)
	}
	if !resp.OK || resp.Violations != 5 {
		t.Errorf("resp = %+v, want the standby's answer", resp)
	}
	if got := atomic.LoadInt32(seen); got != 1 {
		t.Errorf("standby saw %d connections, want 1", got)
	}
}

func TestFailoverExhaustsEveryAddress(t *testing.T) {
	a, b := deadAddr(t), deadAddr(t)
	// retries=0 would be one attempt against a single address, but the
	// budget stretches to cover every listed address once.
	_, err := roundTripRetry([]string{a, b}, time.Second, 0,
		request{Op: "state"}, func(time.Duration) {})
	if err == nil {
		t.Fatal("want failure with every address dead")
	}
	for _, addr := range []string{a, b} {
		if !strings.Contains(err.Error(), addr) {
			t.Errorf("error %q should name exhausted address %s", err, addr)
		}
	}
}

func TestBusyRejectionStaysOnSameAddress(t *testing.T) {
	// First answer is busy, second succeeds; a second (dead) address must
	// never be dialed, because a busy daemon answered.
	live, seen := flakyDaemon(t, 0, 1)
	dead := deadAddr(t)
	resp, err := roundTripRetry([]string{live, dead}, time.Second, 3,
		request{Op: "violations"}, func(time.Duration) {})
	if err != nil {
		t.Fatalf("busy retry on the same daemon should recover: %v", err)
	}
	if !resp.OK {
		t.Errorf("resp = %+v, want the served answer", resp)
	}
	if got := atomic.LoadInt32(seen); got != 2 {
		t.Errorf("daemon saw %d connections, want 2 (busy then ok)", got)
	}
}

func TestProtocolErrorsAreNotRetried(t *testing.T) {
	addr := fakeDaemon(t)
	calls := 0
	resp, err := roundTripRetry([]string{addr}, time.Second, 3, request{Op: "event", Device: "ghost", Action: "x"},
		func(time.Duration) { calls++ })
	if err != nil {
		t.Fatalf("a daemon-level error is still a delivered response: %v", err)
	}
	if resp.OK || resp.Error == "" {
		t.Errorf("resp = %+v, want the daemon's error answer", resp)
	}
	if calls != 0 {
		t.Errorf("slept %d times; protocol errors must not be retried", calls)
	}
}

// fakeDebug serves canned bodies keyed by path+query on a debug listener.
func fakeDebug(t *testing.T, pages map[string]string) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Path
		if r.URL.RawQuery != "" {
			key += "?" + r.URL.RawQuery
		}
		body, ok := pages[key]
		if !ok {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, body)
	}))
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// TestStatsFormats: -format json copies the raw snapshot through and
// -format prom requests and copies the Prometheus exposition; unknown
// formats are rejected before any request is made.
func TestStatsFormats(t *testing.T) {
	jsonBody := `{"unixNs":1,"counters":{"jarvisd.requests.state":7}}`
	promBody := "# TYPE jarvisd_requests_state counter\njarvisd_requests_state 7\n"
	addr := fakeDebug(t, map[string]string{
		"/metrics":             jsonBody,
		"/metrics?format=prom": promBody,
	})

	var buf bytes.Buffer
	if err := run([]string{"-debug-addr", addr, "-format", "json", "stats"}, &buf); err != nil {
		t.Fatalf("stats -format json: %v", err)
	}
	if buf.String() != jsonBody {
		t.Errorf("json format altered the body: %q", buf.String())
	}

	buf.Reset()
	if err := run([]string{"-debug-addr", addr, "-format", "prom", "stats"}, &buf); err != nil {
		t.Fatalf("stats -format prom: %v", err)
	}
	if buf.String() != promBody {
		t.Errorf("prom format altered the body: %q", buf.String())
	}

	if err := run([]string{"-debug-addr", addr, "-format", "xml", "stats"}, &buf); err == nil {
		t.Error("unknown format should error")
	}
}

// TestTraceCommand: the trace subcommand renders each fetched trace as an
// indented span tree with durations and annotations.
func TestTraceCommand(t *testing.T) {
	line := `{"id":"00000000deadbeef","name":"jarvisd.recommend","unixNs":1700000000000000000,"durNs":1500000,` +
		`"spans":[{"name":"jarvisd.recommend","parent":-1,"startNs":0,"durNs":1500000},` +
		`{"name":"queue.wait","parent":0,"startNs":1000,"durNs":2000},` +
		`{"name":"rl.select","parent":0,"startNs":4000,"durNs":900000,"annotations":[{"k":"q","v":"1.25"}]}]}`
	addr := fakeDebug(t, map[string]string{
		"/debug/traces?n=0":              line + "\n",
		"/debug/traces?n=1&sort=slowest": line + "\n",
	})

	var buf bytes.Buffer
	if err := run([]string{"-debug-addr", addr, "trace"}, &buf); err != nil {
		t.Fatalf("trace: %v", err)
	}
	for _, want := range []string{"00000000deadbeef", "jarvisd.recommend", "1.5ms", "queue.wait", "rl.select", "q=1.25"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("trace output missing %q:\n%s", want, buf.String())
		}
	}

	buf.Reset()
	if err := run([]string{"-debug-addr", addr, "-n", "1", "-slowest", "trace"}, &buf); err != nil {
		t.Fatalf("trace -slowest: %v", err)
	}
	if !strings.Contains(buf.String(), "jarvisd.recommend") {
		t.Errorf("slowest trace output:\n%s", buf.String())
	}
}

// TestTraceEmptyRing: an empty ring explains itself instead of printing
// nothing.
func TestTraceEmptyRing(t *testing.T) {
	addr := fakeDebug(t, map[string]string{"/debug/traces?n=0": ""})
	var buf bytes.Buffer
	if err := run([]string{"-debug-addr", addr, "trace"}, &buf); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if !strings.Contains(buf.String(), "no traces retained") {
		t.Errorf("empty ring output:\n%s", buf.String())
	}
}
