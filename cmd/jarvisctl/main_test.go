package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"jarvis/internal/telemetry"
)

// fakeDaemon answers one request per connection with canned responses.
func fakeDaemon(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				var req request
				if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&req); err != nil {
					return
				}
				resp := response{OK: true, Minute: 600}
				switch req.Op {
				case "state":
					resp.State = []string{"oven=off"}
					resp.Violations = 2
				case "event":
					if req.Device == "ghost" {
						resp = response{Error: "unknown device"}
					} else {
						resp.State = []string{req.Device + "=on"}
						resp.Unsafe = req.Device == "door-sensor"
					}
				case "recommend":
					resp.Action = "(O, O)"
				case "violations":
					resp.Violations = 3
				}
				_ = json.NewEncoder(conn).Encode(resp)
			}()
		}
	}()
	return ln.Addr().String()
}

func TestCommands(t *testing.T) {
	addr := fakeDaemon(t)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"state"}, "oven=off"},
		{[]string{"event", "oven", "power_on"}, "oven=on"},
		{[]string{"event", "door-sensor", "power_off"}, "UNSAFE"},
		{[]string{"recommend"}, "(O, O)"},
		{[]string{"violations"}, "3 violation"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		args := append([]string{"-addr", addr}, c.args...)
		if err := run(args, &buf); err != nil {
			t.Fatalf("run(%v): %v", c.args, err)
		}
		if !strings.Contains(buf.String(), c.want) {
			t.Errorf("run(%v) = %q, want it to contain %q", c.args, buf.String(), c.want)
		}
	}
}

func TestDaemonError(t *testing.T) {
	addr := fakeDaemon(t)
	var buf bytes.Buffer
	err := run([]string{"-addr", addr, "event", "ghost", "x"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "unknown device") {
		t.Fatalf("daemon error not surfaced: %v", err)
	}
}

func TestArgValidation(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"event", "oven"},
		{"state", "extra"},
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) should error", args)
		}
	}
}

// fakeMetrics serves a canned /metrics snapshot (or a failure status).
func fakeMetrics(t *testing.T, status int, body string) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.WriteHeader(status)
		fmt.Fprint(w, body)
	}))
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

func TestStats(t *testing.T) {
	snap := telemetry.Snapshot{
		UnixNs:   time.Now().UnixNano(),
		Counters: map[string]int64{"jarvisd.requests.state": 7},
		Gauges:   map[string]float64{"rl.epsilon": 0.05},
		Histograms: map[string]telemetry.HistogramStats{
			"jarvisd.request.latency": {Count: 7, P50Ns: 1200, P95Ns: 4000, P99Ns: 9000, MaxNs: 9500},
		},
	}
	body, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	addr := fakeMetrics(t, http.StatusOK, string(body))
	var buf bytes.Buffer
	if err := run([]string{"-debug-addr", addr, "stats"}, &buf); err != nil {
		t.Fatalf("stats: %v", err)
	}
	for _, want := range []string{"jarvisd.requests.state", "7", "rl.epsilon", "jarvisd.request.latency", "p95="} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestStatsNon200(t *testing.T) {
	addr := fakeMetrics(t, http.StatusInternalServerError, "boom")
	var buf bytes.Buffer
	err := run([]string{"-debug-addr", addr, "stats"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("non-200 metrics response not surfaced: %v", err)
	}
}

func TestStatsRejectsArguments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"stats", "extra"}, &buf); err == nil {
		t.Error("stats with arguments should error")
	}
}

func TestDialFailure(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-addr", "127.0.0.1:1", "-timeout", (200 * time.Millisecond).String(), "state"}, &buf)
	if err == nil {
		t.Skip("port 1 unexpectedly reachable")
	}
}
