package main

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/smarthome"
	"jarvis/internal/wire"
)

// The binary protocol speaks device and action indices, not names. Both
// ends compile in the same 11-device home (jarvisd builds it the same
// way), so the client can resolve names locally and render responses
// without the daemon shipping strings.
var wireHome = sync.OnceValue(func() *env.Environment {
	return smarthome.NewFullHome().Env
})

// dispatchRequest routes one protocol request according to -wire:
// json is the legacy path, binary fails hard if the daemon can't ack the
// handshake, and auto tries binary first and silently falls back to JSON
// against older daemons. The downgrade signal (wire.ErrNotBinary) is a
// protocol answer, so auto does not burn retries before falling back.
func dispatchRequest(mode string, addrs []string, timeout time.Duration, retries int, req request, sleep func(time.Duration)) (response, error) {
	switch mode {
	case "json":
		return roundTripRetry(addrs, timeout, retries, req, sleep)
	case "binary", "auto":
	default:
		return response{}, fmt.Errorf("unknown -wire %q (want auto, binary, or json)", mode)
	}
	wreq, err := wireRequest(req)
	if err != nil {
		if mode == "auto" {
			// Not expressible in the compiled-in topology; let the daemon
			// be the judge over JSON.
			return roundTripRetry(addrs, timeout, retries, req, sleep)
		}
		return response{}, err
	}
	resp, rerr := retryLoop(func(a string, t time.Duration, _ request) (response, error) {
		return roundTripWire(a, t, wreq)
	}, addrs, timeout, retries, req, sleep)
	if rerr != nil && mode == "auto" && errors.Is(rerr, wire.ErrNotBinary) {
		return roundTripRetry(addrs, timeout, retries, req, sleep)
	}
	return resp, rerr
}

// wireRequest translates a name-based protocol request into the
// index-based binary encoding.
func wireRequest(req request) (wire.Request, error) {
	switch req.Op {
	case "state":
		return wire.Request{Op: wire.OpState}, nil
	case "recommend":
		return wire.Request{Op: wire.OpRecommend}, nil
	case "violations":
		return wire.Request{Op: wire.OpViolations}, nil
	case "event":
		e := wireHome()
		di, ok := e.DeviceIndex(req.Device)
		if !ok {
			return wire.Request{}, fmt.Errorf("unknown device %q", req.Device)
		}
		act, ok := e.Device(di).ActionID(req.Action)
		if !ok {
			return wire.Request{}, fmt.Errorf("device %q has no action %q", req.Device, req.Action)
		}
		return wire.Request{Op: wire.OpEvent, Device: uint16(di), Action: int16(act)}, nil
	}
	return wire.Request{}, fmt.Errorf("op %q has no binary encoding", req.Op)
}

// roundTripWire performs one binary exchange and converts the answer back
// into the JSON-shaped response the render layer already understands.
func roundTripWire(addr string, timeout time.Duration, wreq wire.Request) (response, error) {
	c, err := wire.Dial(addr, timeout)
	if err != nil {
		return response{}, err
	}
	defer c.Close()
	wr, err := c.Do(wreq)
	if err != nil {
		return response{}, err
	}
	return wireResponse(wr), nil
}

// wireResponse renders an index-based binary response with the local
// topology: state IDs become "device=state" strings and the action vector
// is formatted exactly as the daemon would have.
func wireResponse(wr *wire.Response) response {
	resp := response{
		OK:           wr.OK(),
		Unsafe:       wr.Unsafe(),
		Busy:         wr.Busy(),
		Error:        string(wr.Err),
		Violations:   int(wr.Violations),
		Minute:       int(wr.Minute),
		Degraded:     int(wr.Degraded),
		RetryAfterMs: int(wr.RetryAfterMs),
		Q:            wr.Q,
	}
	e := wireHome()
	if len(wr.State) > 0 {
		resp.State = make([]string, len(wr.State))
		for i, s := range wr.State {
			d := e.Device(i)
			resp.State[i] = d.Name() + "=" + d.StateName(device.StateID(s))
		}
	}
	if wr.Flags&wire.FlagHasAction != 0 {
		acts := make([]device.ActionID, len(wr.Action))
		for i, a := range wr.Action {
			acts[i] = device.ActionID(a)
		}
		resp.Action = e.FormatAction(acts)
	}
	return resp
}
