package main

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"jarvis/internal/wire"
)

// fakeBinaryDaemon acks the binary handshake and answers framed requests
// with canned responses, mirroring fakeDaemon for the new codec.
func fakeBinaryDaemon(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	e := wireHome()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				hello := make([]byte, 2)
				if _, err := io.ReadFull(conn, hello); err != nil ||
					hello[0] != wire.Magic || hello[1] != wire.Version {
					return
				}
				if _, err := conn.Write(wire.AppendAck(nil)); err != nil {
					return
				}
				r := wire.NewReader(conn)
				var out []byte
				for {
					payload, err := r.ReadFrame()
					if err != nil {
						return
					}
					req, err := wire.ParseRequest(payload)
					if err != nil {
						return
					}
					resp := wire.Response{Flags: wire.FlagOK, Minute: 600}
					switch req.Op {
					case wire.OpState:
						resp.State = make([]uint8, e.K())
						resp.Violations = 2
					case wire.OpEvent:
						resp.State = make([]uint8, e.K())
					case wire.OpRecommend:
						resp.Action = make([]int16, e.K())
						resp.Q = 4.25
					case wire.OpViolations:
						resp.Violations = 3
					}
					out = wire.AppendResponse(out[:0], &resp)
					if _, err := conn.Write(out); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestWireBinaryCommands drives the client against a binary-only daemon
// with -wire binary: no JSON round can have happened.
func TestWireBinaryCommands(t *testing.T) {
	addr := fakeBinaryDaemon(t)
	e := wireHome()
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"state"}, e.Device(0).Name() + "="},
		{[]string{"recommend"}, "q=4.2500"},
		{[]string{"violations"}, "3 violation"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		args := append([]string{"-addr", addr, "-wire", "binary"}, c.args...)
		if err := run(args, &buf); err != nil {
			t.Fatalf("run(%v): %v", c.args, err)
		}
		if !strings.Contains(buf.String(), c.want) {
			t.Errorf("run(%v) = %q, want it to contain %q", c.args, buf.String(), c.want)
		}
	}
}

// TestWireBinaryRefusesJSONDaemon pins the hard-fail contract: -wire
// binary against a JSON-only daemon errors immediately (no retry burn)
// instead of downgrading.
func TestWireBinaryRefusesJSONDaemon(t *testing.T) {
	addr := fakeDaemon(t)
	var buf bytes.Buffer
	start := time.Now()
	err := run([]string{"-addr", addr, "-wire", "binary", "state"}, &buf)
	if err == nil || !errors.Is(err, wire.ErrNotBinary) {
		t.Fatalf("want ErrNotBinary, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("downgrade answer took %s; it should not consume retries", d)
	}
}

// TestWireAutoPrefersBinary checks auto mode sticks with the binary codec
// when the daemon speaks it.
func TestWireAutoPrefersBinary(t *testing.T) {
	addr := fakeBinaryDaemon(t)
	var buf bytes.Buffer
	if err := run([]string{"-addr", addr, "recommend"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "q=4.2500") {
		t.Errorf("auto mode answer = %q, want the binary daemon's q", buf.String())
	}
}

// TestWireEventResolution pins client-side name resolution errors for the
// binary codec.
func TestWireEventResolution(t *testing.T) {
	if _, err := wireRequest(request{Op: "event", Device: "ghost", Action: "x"}); err == nil {
		t.Error("unknown device should fail to encode")
	}
	if _, err := wireRequest(request{Op: "event", Device: "tv", Action: "explode"}); err == nil {
		t.Error("unknown action should fail to encode")
	}
	wreq, err := wireRequest(request{Op: "event", Device: "tv", Action: "power_on"})
	if err != nil || wreq.Op != wire.OpEvent {
		t.Fatalf("tv power_on: %+v, %v", wreq, err)
	}
}

// TestWireUnknownMode rejects bad -wire values.
func TestWireUnknownMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-wire", "carrier-pigeon", "state"}, &buf); err == nil {
		t.Error("unknown -wire value should error")
	}
}
