package jarvis

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"jarvis/internal/compiled"
	"jarvis/internal/dataset"
	"jarvis/internal/env"
	"jarvis/internal/reward"
	"jarvis/internal/rl"
	"jarvis/internal/smarthome"
)

// compiledFixture is a trained full-home system with the compiled-policy
// cache enabled under its lock — the daemon's serving shape.
type compiledFixture struct {
	home *smarthome.FullHome
	sys  *System
	mu   sync.Mutex
}

func newCompiledFixture(t *testing.T, seed int64) *compiledFixture {
	t.Helper()
	home, days := learnWeek(t)
	sys, err := New(home.Env, Config{Seed: seed})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sys.Learn(dataset.Episodes(days))
	rs, err := reward.New(home.Env, reward.Config{
		Functionalities: []reward.Functionality{
			{Name: "energy", Weight: 1, F: smarthome.EnergyReward(home.Env)},
		},
		Instances: smarthome.InstancesPerDay,
	})
	if err != nil {
		t.Fatalf("reward.New: %v", err)
	}
	if _, err := sys.Train(rl.SimConfig{
		Initial: home.InitialState(),
		Reward:  rs,
	}, TrainConfig{Agent: rl.AgentConfig{Episodes: 2, DecideEvery: 30, ReplayEvery: 8}}); err != nil {
		t.Fatalf("Train: %v", err)
	}
	f := &compiledFixture{home: home, sys: sys}
	if err := sys.EnableCompiledPolicy(&f.mu, compiled.Options{}); err != nil {
		t.Fatalf("EnableCompiledPolicy: %v", err)
	}
	return f
}

// walkDay drives a simulated day through fn: recommended actions are
// applied to the state, and every few minutes a random valid device event
// perturbs it so the walk leaves the recommendation trajectory (covering
// unpopulated Q rows).
func (f *compiledFixture) walkDay(t *testing.T, fn func(s env.State, minute int)) {
	t.Helper()
	e := f.home.Env
	rng := rand.New(rand.NewSource(99))
	s := f.home.InitialState()
	for minute := 0; minute < smarthome.InstancesPerDay; minute++ {
		fn(s, minute)
		act, err := f.sys.Recommend(s, minute)
		if err != nil {
			t.Fatalf("minute %d: %v", minute, err)
		}
		next, err := e.Transition(s, act)
		if err != nil {
			t.Fatalf("minute %d: transition: %v", minute, err)
		}
		s = next
		if minute%7 == 0 {
			dev := rng.Intn(e.K())
			valid := e.Device(dev).ValidActions(s[dev])
			if len(valid) > 0 {
				a := env.NoOp(e.K())
				a[dev] = valid[rng.Intn(len(valid))]
				if next, err := e.Transition(s, a); err == nil {
					s = next
				}
			}
		}
	}
}

// TestCompiledSystemGoldenDay pins the compiled fast path bit-identical to
// the live agent across a full simulated day of the full home, and checks
// the day was served entirely from the table.
func TestCompiledSystemGoldenDay(t *testing.T) {
	f := newCompiledFixture(t, 21)
	e := f.home.Env
	agent := f.sys.Agent()
	served := 0
	f.walkDay(t, func(s env.State, minute int) {
		d, err := f.sys.RecommendDecision(s, minute)
		if err != nil {
			t.Fatalf("minute %d: %v", minute, err)
		}
		want := agent.Recommend(s, minute)
		wantV := agent.LastValue()
		if e.ActionKey(d.Action) != e.ActionKey(want) {
			t.Fatalf("minute %d: compiled %v, agent %v", minute, d.Action, want)
		}
		if math.Float64bits(d.Value) != math.Float64bits(wantV) {
			t.Fatalf("minute %d: compiled value %v, agent %v", minute, d.Value, wantV)
		}
		if d.Degraded {
			t.Fatalf("minute %d: unexpected degraded decision", minute)
		}
		served++
	})
	st := f.sys.CompiledPolicy().Stats()
	if !st.Ready || st.Hits < uint64(served) {
		t.Fatalf("Stats = %+v, want ready with ≥%d hits", st, served)
	}
	if st.Misses != 0 {
		t.Fatalf("misses = %d on a clean cache", st.Misses)
	}
}

// TestCompiledInvalidation covers every mutation surface the daemon can
// hit: online learn steps, LoadQ (the watchdog's rollback primitive, also
// SwapPolicy's Q path), and LoadTable (SwapPolicy's P_safe path). Each
// must invalidate and rebuild, and post-rebuild decisions must again match
// the live agent.
func TestCompiledInvalidation(t *testing.T) {
	f := newCompiledFixture(t, 22)
	c := f.sys.CompiledPolicy()
	e := f.home.Env
	s0 := f.home.InitialState()

	parity := func(tag string) {
		t.Helper()
		c.Wait()
		if c.Policy() == nil {
			t.Fatalf("%s: no table after rebuild", tag)
		}
		for minute := 0; minute < 120; minute += 13 {
			d, err := f.sys.RecommendDecision(s0, minute)
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			want := f.sys.Agent().Recommend(s0, minute)
			if e.ActionKey(d.Action) != e.ActionKey(want) {
				t.Fatalf("%s minute %d: compiled %v, agent %v", tag, minute, d.Action, want)
			}
		}
	}

	// Online learning: feed transitions until a replay step runs.
	before := c.Stats().Rebuilds
	f.mu.Lock()
	rng := rand.New(rand.NewSource(77))
	s := s0
	ran := false
	for i := 0; i < 256 && !ran; i++ {
		act := f.sys.Agent().Recommend(s, i%smarthome.InstancesPerDay)
		next, _, err := f.sys.ObserveTransition(s, act, i%smarthome.InstancesPerDay)
		if err != nil {
			f.mu.Unlock()
			t.Fatalf("ObserveTransition: %v", err)
		}
		s = next
		if ran, err = f.sys.LearnOnline(rng); err != nil {
			f.mu.Unlock()
			t.Fatalf("LearnOnline: %v", err)
		}
	}
	f.mu.Unlock()
	if !ran {
		t.Fatal("no online learn step ran")
	}
	if c.Stats().Rebuilds == before {
		c.Wait()
	}
	if got := c.Stats().Rebuilds; got <= before {
		t.Fatalf("learn step did not rebuild: %d → %d", before, got)
	}
	parity("learn")

	// LoadQ: the watchdog rollback / SwapPolicy Q substitution path.
	var q bytes.Buffer
	if err := f.sys.SaveQ(&q); err != nil {
		t.Fatal(err)
	}
	before = c.Stats().Rebuilds
	f.mu.Lock()
	if err := f.sys.LoadQ(bytes.NewReader(q.Bytes())); err != nil {
		f.mu.Unlock()
		t.Fatalf("LoadQ: %v", err)
	}
	if c.Policy() != nil {
		f.mu.Unlock()
		t.Fatal("table still visible right after LoadQ")
	}
	f.mu.Unlock()
	c.Wait()
	if got := c.Stats().Rebuilds; got <= before {
		t.Fatalf("LoadQ did not rebuild: %d → %d", before, got)
	}
	parity("loadq")

	// LoadTable: the SwapPolicy P_safe substitution path.
	var tb bytes.Buffer
	if err := f.sys.SaveTable(&tb); err != nil {
		t.Fatal(err)
	}
	before = c.Stats().Rebuilds
	f.mu.Lock()
	if err := f.sys.LoadTable(bytes.NewReader(tb.Bytes())); err != nil {
		f.mu.Unlock()
		t.Fatalf("LoadTable: %v", err)
	}
	f.mu.Unlock()
	c.Wait()
	if got := c.Stats().Rebuilds; got <= before {
		t.Fatalf("LoadTable did not rebuild: %d → %d", before, got)
	}
	parity("loadtable")
}

// TestCompiledDegradedFallback poisons the live Q function: the rebuild
// must refuse (non-finite values are uncompilable), lookups must fall back
// to the agent path, and the degraded NoOp machinery must keep working
// exactly as without a compiled cache.
func TestCompiledDegradedFallback(t *testing.T) {
	f := newCompiledFixture(t, 23)
	c := f.sys.CompiledPolicy()
	s0 := f.home.InitialState()

	q, ok := f.sys.Agent().Q().(*rl.TableQ)
	if !ok {
		t.Fatalf("backend %T, want TableQ", f.sys.Agent().Q())
	}
	minis := f.sys.Agent().Minis()
	f.mu.Lock()
	if _, err := q.Update(
		[]rl.Experience{{S: s0, T: 0, Minis: []int{minis.NoOpIndex() + 1}}},
		[]float64{math.NaN()},
	); err != nil {
		f.mu.Unlock()
		t.Fatal(err)
	}
	c.Invalidate()
	f.mu.Unlock()
	c.Wait()

	if c.Policy() != nil {
		t.Fatal("poisoned Q produced a table")
	}
	if st := c.Stats(); st.LastError == "" || st.Disabled {
		t.Fatalf("Stats = %+v, want transient compile error", st)
	}
	degradedBefore := f.sys.DegradedRecommendations()
	d, err := f.sys.RecommendDecision(s0, 0)
	if err != nil {
		t.Fatalf("RecommendDecision: %v", err)
	}
	if !d.Degraded || d.Value != 0 {
		t.Fatalf("Decision = %+v, want degraded NoOp", d)
	}
	if f.sys.DegradedRecommendations() <= degradedBefore {
		t.Fatal("degraded counter did not move")
	}
	if st := c.Stats(); st.Misses == 0 {
		t.Fatal("fallback not counted as a miss")
	}
}

// TestCompiledRecommendAllocationFree pins the serving hot path at zero
// allocations: state validation, key encode, table load, decision copy.
func TestCompiledRecommendAllocationFree(t *testing.T) {
	f := newCompiledFixture(t, 24)
	s := f.home.InitialState()
	var sink float64
	allocs := testing.AllocsPerRun(1000, func() {
		d, err := f.sys.RecommendDecision(s, 600)
		if err != nil {
			t.Fatal(err)
		}
		sink += d.Value
	})
	if allocs != 0 {
		t.Fatalf("RecommendDecision allocates %.1f objects per call, want 0", allocs)
	}
	_ = sink
}

// TestCompiledTooLargeFallsBack enables compilation with a tiny cap: the
// cache must disable itself and the system must keep serving through the
// agent, bit-identical to an uncompiled system.
func TestCompiledTooLargeFallsBack(t *testing.T) {
	f := newCompiledFixture(t, 25)
	// Re-enable with an impossible cap.
	if err := f.sys.EnableCompiledPolicy(&f.mu, compiled.Options{MaxEntries: 16}); err == nil {
		t.Fatal("EnableCompiledPolicy accepted an impossible cap")
	}
	c := f.sys.CompiledPolicy()
	if !c.Disabled() {
		t.Fatal("cache not disabled")
	}
	s0 := f.home.InitialState()
	d, err := f.sys.RecommendDecision(s0, 300)
	if err != nil {
		t.Fatalf("RecommendDecision: %v", err)
	}
	want := f.sys.Agent().Recommend(s0, 300)
	if f.home.Env.ActionKey(d.Action) != f.home.Env.ActionKey(want) {
		t.Fatalf("fallback decision %v, agent %v", d.Action, want)
	}
}
