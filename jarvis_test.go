package jarvis

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"jarvis/internal/dataset"
	"jarvis/internal/device"
	"jarvis/internal/env"
	"jarvis/internal/reward"
	"jarvis/internal/rl"
	"jarvis/internal/smarthome"
)

var monday = time.Date(2020, 9, 7, 0, 0, 0, 0, time.UTC)

func learnWeek(t *testing.T) (*smarthome.FullHome, []*dataset.Day) {
	t.Helper()
	home := smarthome.NewFullHome()
	gen := dataset.NewGenerator(home, dataset.HomeAConfig())
	days, err := gen.Days(monday, 3, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("Days: %v", err)
	}
	return home, days
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("nil environment should error")
	}
}

func TestLifecycleOrdering(t *testing.T) {
	home, _ := learnWeek(t)
	sys, err := New(home.Env, Config{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := sys.TrainFilter(nil); err == nil {
		t.Error("TrainFilter without Filter enabled should error")
	}
	if _, err := sys.Recommend(home.InitialState(), 0); err == nil {
		t.Error("Recommend before Train should error")
	}
	if _, err := sys.Audit(nil); err == nil {
		t.Error("Audit before Learn should error")
	}
	if err := sys.SaveTable(&bytes.Buffer{}); err == nil {
		t.Error("SaveTable before Learn should error")
	}
	if err := sys.AllowManual(0, 0); err == nil {
		t.Error("AllowManual before Learn should error")
	}
}

func TestEndToEnd(t *testing.T) {
	home, days := learnWeek(t)
	sys, err := New(home.Env, Config{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eps := dataset.Episodes(days)
	sys.Learn(eps)
	if sys.SafeTable() == nil || sys.SafeTable().Len() == 0 {
		t.Fatal("Learn produced an empty table")
	}
	if err := sys.AllowManual(home.Thermostat, smarthome.ThermostatActOff); err != nil {
		t.Fatalf("AllowManual: %v", err)
	}
	if err := sys.AllowManual(99, 0); err == nil {
		t.Error("AllowManual with bad device should error")
	}

	// Audit: a benign episode has no violations; a tampered one does.
	if v, err := sys.Audit(eps[:1]); err != nil || len(v) != 0 {
		t.Fatalf("benign audit: %v %v", v, err)
	}
	mal := eps[0]
	actions := make([]env.Action, mal.Len())
	for i, a := range mal.Actions {
		actions[i] = a.Clone()
	}
	actions[120][home.DoorSensor] = 0 // power off the door sensor at 02:00
	tampered, err := env.ReplayActions(home.Env, mal.States[0], mal.Start, mal.I, actions)
	if err != nil {
		t.Fatalf("ReplayActions: %v", err)
	}
	v, err := sys.Audit([]env.Episode{tampered})
	if err != nil || len(v) == 0 {
		t.Fatalf("tampered audit: %v %v", v, err)
	}

	// Train a small optimizer and get a recommendation.
	pref := sys.PreferredTimes(eps)
	rs, err := reward.New(home.Env, reward.Config{
		Functionalities: smarthome.Functionalities(
			home.Env, home.TempSensor, home.Thermostat, days[0].Context.Prices, 0.6, 0.2, 0.2),
		Preferred: pref,
		Instances: smarthome.InstancesPerDay,
	})
	if err != nil {
		t.Fatalf("reward.New: %v", err)
	}
	stats, err := sys.Train(rl.SimConfig{
		Initial: home.InitialState(),
		Reward:  rs,
	}, TrainConfig{Agent: rl.AgentConfig{
		Episodes: 3, DecideEvery: 30, ReplayEvery: 8,
	}})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if len(stats.EpisodeRewards) != 3 {
		t.Fatalf("episodes trained = %d", len(stats.EpisodeRewards))
	}
	if stats.Violations != 0 {
		t.Errorf("constrained training committed %d violations", stats.Violations)
	}
	if sys.TrainingViolations() != 0 {
		t.Errorf("TrainingViolations = %d", sys.TrainingViolations())
	}

	act, err := sys.Recommend(home.InitialState(), 8*60)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	if len(act) != home.Env.K() {
		t.Fatalf("recommendation arity %d", len(act))
	}
	if _, err := sys.Recommend(env.State{99}, 0); err == nil {
		t.Error("invalid state should error")
	}

	// Table round trip.
	var buf bytes.Buffer
	if err := sys.SaveTable(&buf); err != nil {
		t.Fatalf("SaveTable: %v", err)
	}
	if err := sys.LoadTable(&buf); err != nil {
		t.Fatalf("LoadTable: %v", err)
	}
	if err := sys.LoadTable(bytes.NewBufferString("junk")); err == nil {
		t.Error("junk table should fail to load")
	}
}

func TestFilterPipeline(t *testing.T) {
	home, days := learnWeek(t)
	sys, err := New(home.Env, Config{Seed: 2, Filter: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if sys.Filter() == nil {
		t.Fatal("filter should be constructed")
	}
	rng := rand.New(rand.NewSource(3))
	anoms, err := dataset.SynthesizeAnomalies(home, days, 200, rng)
	if err != nil {
		t.Fatalf("SynthesizeAnomalies: %v", err)
	}
	normals, err := dataset.NormalSamples(days, 200, rng)
	if err != nil {
		t.Fatalf("NormalSamples: %v", err)
	}
	if _, err := sys.TrainFilter(append(anoms, normals...)); err != nil {
		t.Fatalf("TrainFilter: %v", err)
	}
	sys.Learn(dataset.Episodes(days))
	if sys.SafeTable().Len() == 0 {
		t.Fatal("filtered learning produced an empty table")
	}
	_, filtered := sys.spl.Observed()
	if filtered == 0 {
		t.Log("note: filter removed no transitions from this learning run")
	}
}

func TestTrainWithDNN(t *testing.T) {
	home, days := learnWeek(t)
	sys, err := New(home.Env, Config{Seed: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eps := dataset.Episodes(days)
	sys.Learn(eps)
	rs, err := reward.New(home.Env, reward.Config{
		Functionalities: []reward.Functionality{
			{Name: "energy", Weight: 1, F: smarthome.EnergyReward(home.Env)},
		},
		Instances: 60, // short episodes for the DNN smoke test
	})
	if err != nil {
		t.Fatalf("reward.New: %v", err)
	}
	if _, err := sys.Train(rl.SimConfig{
		Initial: home.InitialState(),
		Reward:  rs,
	}, TrainConfig{
		UseDNN: true,
		DNN:    rl.DQNConfig{Hidden: []int{16}},
		Agent:  rl.AgentConfig{Episodes: 2, DecideEvery: 5, ReplayEvery: 8},
	}); err != nil {
		t.Fatalf("Train(DNN): %v", err)
	}
}

func TestRecommendationsAreSafe(t *testing.T) {
	home, days := learnWeek(t)
	sys, err := New(home.Env, Config{Seed: 6})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eps := dataset.Episodes(days)
	sys.Learn(eps)
	rs, err := reward.New(home.Env, reward.Config{
		Functionalities: []reward.Functionality{
			{Name: "energy", Weight: 1, F: smarthome.EnergyReward(home.Env)},
		},
		Instances: smarthome.InstancesPerDay,
	})
	if err != nil {
		t.Fatalf("reward.New: %v", err)
	}
	if _, err := sys.Train(rl.SimConfig{
		Initial: home.InitialState(),
		Reward:  rs,
	}, TrainConfig{Agent: rl.AgentConfig{Episodes: 2, DecideEvery: 30, ReplayEvery: 8}}); err != nil {
		t.Fatalf("Train: %v", err)
	}
	table := sys.SafeTable()
	e := home.Env
	for _, ep := range eps[:1] {
		for ti, tr := range ep.Transitions() {
			if ti%60 != 0 {
				continue
			}
			act, err := sys.Recommend(tr.From, tr.Instance)
			if err != nil {
				t.Fatalf("Recommend: %v", err)
			}
			next, err := e.Transition(tr.From, act)
			if err != nil {
				t.Fatalf("recommended action invalid: %v", err)
			}
			if !table.SafeTransition(e.StateKey(tr.From), e.StateKey(next), act) {
				t.Fatalf("unsafe recommendation %v at %d", e.FormatAction(act), tr.Instance)
			}
		}
	}
	_ = device.NoAction
}

func TestRestoreServesWithoutRetraining(t *testing.T) {
	home, days := learnWeek(t)
	eps := dataset.Episodes(days)
	buildReward := func(sys *System) *reward.Smart {
		rs, err := reward.New(home.Env, reward.Config{
			Functionalities: smarthome.Functionalities(
				home.Env, home.TempSensor, home.Thermostat, days[0].Context.Prices, 0.6, 0.2, 0.2),
			Preferred: sys.PreferredTimes(eps),
			Instances: smarthome.InstancesPerDay,
		})
		if err != nil {
			t.Fatalf("reward.New: %v", err)
		}
		return rs
	}
	trainCfg := TrainConfig{Agent: rl.AgentConfig{Episodes: 3, DecideEvery: 30, ReplayEvery: 8}}

	sys, err := New(home.Env, Config{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys.SaveQ(&bytes.Buffer{}); err == nil {
		t.Error("SaveQ before Train should error")
	}
	sys.Learn(eps)
	if _, err := sys.Train(rl.SimConfig{Initial: home.InitialState(), Reward: buildReward(sys)}, trainCfg); err != nil {
		t.Fatalf("Train: %v", err)
	}
	wantAct, err := sys.Recommend(home.InitialState(), 8*60)
	if err != nil {
		t.Fatalf("Recommend: %v", err)
	}
	var qbuf, tbuf bytes.Buffer
	if err := sys.SaveQ(&qbuf); err != nil {
		t.Fatalf("SaveQ: %v", err)
	}
	if err := sys.SaveTable(&tbuf); err != nil {
		t.Fatalf("SaveTable: %v", err)
	}

	// A fresh system restores the checkpointed table + Q and serves the
	// same recommendation with no Train call.
	sys2, err := New(home.Env, Config{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sys2.Restore(rl.SimConfig{Initial: home.InitialState()}, trainCfg, &qbuf); err == nil {
		t.Error("Restore before Learn/LoadTable should error")
	}
	if err := sys2.LoadTable(bytes.NewReader(tbuf.Bytes())); err != nil {
		t.Fatalf("LoadTable: %v", err)
	}
	if err := sys2.Restore(rl.SimConfig{
		Initial: home.InitialState(),
		Reward:  buildReward(sys2),
	}, trainCfg, bytes.NewReader(qbuf.Bytes())); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	gotAct, err := sys2.Recommend(home.InitialState(), 8*60)
	if err != nil {
		t.Fatalf("Recommend after Restore: %v", err)
	}
	if home.Env.ActionKey(gotAct) != home.Env.ActionKey(wantAct) {
		t.Errorf("restored recommendation %v differs from trained %v",
			home.Env.FormatAction(gotAct), home.Env.FormatAction(wantAct))
	}

	// A corrupt checkpoint fails cleanly and leaves the system untrained.
	sys3, err := New(home.Env, Config{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sys3.Learn(eps)
	if err := sys3.Restore(rl.SimConfig{
		Initial: home.InitialState(),
		Reward:  buildReward(sys3),
	}, trainCfg, bytes.NewBufferString(`{"alpha":`)); err == nil {
		t.Fatal("Restore accepted a corrupt checkpoint")
	}
	if _, err := sys3.Recommend(home.InitialState(), 0); err == nil {
		t.Error("Recommend should still error after failed Restore")
	}
}

func TestDegradedRecommendFallsBackToNoOp(t *testing.T) {
	home, days := learnWeek(t)
	eps := dataset.Episodes(days)
	sys, err := New(home.Env, Config{Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sys.Learn(eps)
	rs, err := reward.New(home.Env, reward.Config{
		Functionalities: smarthome.Functionalities(
			home.Env, home.TempSensor, home.Thermostat, days[0].Context.Prices, 0.6, 0.2, 0.2),
		Preferred: sys.PreferredTimes(eps),
		Instances: smarthome.InstancesPerDay,
	})
	if err != nil {
		t.Fatalf("reward.New: %v", err)
	}
	if _, err := sys.Train(rl.SimConfig{Initial: home.InitialState(), Reward: rs},
		TrainConfig{Agent: rl.AgentConfig{Episodes: 2, DecideEvery: 30, ReplayEvery: 8}}); err != nil {
		t.Fatalf("Train: %v", err)
	}

	// Poison one Q row with a NaN, as a diverged training run would.
	q, ok := sys.agent.Q().(*rl.TableQ)
	if !ok {
		t.Fatalf("Q backend is %T, want *rl.TableQ", sys.agent.Q())
	}
	state := home.InitialState()
	if _, err := q.Update([]rl.Experience{{S: state, T: 8 * 60, Minis: []int{1}}},
		[]float64{math.NaN()}); err != nil {
		t.Fatalf("poisoning update: %v", err)
	}

	act, err := sys.Recommend(state, 8*60)
	if err != nil {
		t.Fatalf("Recommend in degraded mode: %v", err)
	}
	if !act.IsNoOp() {
		t.Errorf("degraded recommendation = %v, want NoOp", home.Env.FormatAction(act))
	}
	if sys.DegradedRecommendations() == 0 {
		t.Error("degraded fallback not counted")
	}
}
